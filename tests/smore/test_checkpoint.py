"""Checkpoint round-trips: a reloaded policy is the policy.

``save_module``/``load_module`` must reproduce every parameter bitwise,
and — the property inference actually relies on — a TASNet reloaded into
a *differently initialised* network of the same architecture must decode
exactly the same greedy solution as the original.
"""

import numpy as np

from repro import nn
from repro.smore import (
    CriticNetwork,
    SelectionEnv,
    TASNet,
    TASNetConfig,
    TASNetPolicy,
    critic_features,
    run_episode,
)

from .conftest import GRID_NX, GRID_NY

CONFIG = TASNetConfig(d_model=8, num_heads=2, num_layers=1, conv_channels=2)


def _greedy_trace(policy, instance, planner):
    env = SelectionEnv(instance, planner)
    with nn.no_grad():
        state, _, records = run_episode(env, policy, greedy=True,
                                        record_actions=True)
    return state.phi(), [(r.worker_id, r.task_id) for r in records]


def test_tasnet_roundtrip_reproduces_greedy_decode(small_instance, planner,
                                                   tmp_path):
    original = TASNet(CONFIG, GRID_NX, GRID_NY,
                      rng=np.random.default_rng(0))
    path = tmp_path / "tasnet.npz"
    nn.save_module(original, path)

    # Different init seed: every weight differs until the load.
    reloaded = TASNet(CONFIG, GRID_NX, GRID_NY,
                      rng=np.random.default_rng(999))
    assert any(
        not np.array_equal(a, b)
        for a, b in zip(original.state_dict().values(),
                        reloaded.state_dict().values()))
    nn.load_module(reloaded, path)

    for name, value in original.state_dict().items():
        np.testing.assert_array_equal(reloaded.state_dict()[name], value,
                                      err_msg=name)

    phi_ref, actions_ref = _greedy_trace(TASNetPolicy(original),
                                         small_instance, planner)
    phi_new, actions_new = _greedy_trace(TASNetPolicy(reloaded),
                                         small_instance, planner)
    assert actions_new == actions_ref
    assert phi_new == phi_ref


def test_critic_roundtrip_reproduces_values(small_instance, planner,
                                            tmp_path):
    critic = CriticNetwork(hidden=16, rng=np.random.default_rng(1))
    path = tmp_path / "critic.npz"
    nn.save_module(critic, path)

    reloaded = CriticNetwork(hidden=16, rng=np.random.default_rng(2))
    nn.load_module(reloaded, path)
    for name, value in critic.state_dict().items():
        np.testing.assert_array_equal(reloaded.state_dict()[name], value,
                                      err_msg=name)

    env = SelectionEnv(small_instance, planner)
    features = critic_features(small_instance, env.reset())
    with nn.no_grad():
        ref = critic.value_from_features(features).item()
        got = reloaded.value_from_features(features).item()
        batch = reloaded.values(np.stack([features, features])).data
    assert got == ref
    np.testing.assert_allclose(batch, [ref, ref], atol=1e-12, rtol=1e-12)
