"""Tests for the candidate assignment table (Algorithm 1 step 1 / lines 15-23)."""

import pytest

from repro.core import IncentiveModel
from repro.smore import CandidateTable


@pytest.fixture
def table(small_instance, planner):
    incentives = IncentiveModel(mu=small_instance.mu)
    table = CandidateTable(planner, incentives)
    table.initialize(small_instance.workers, small_instance.sensing_tasks,
                     small_instance.budget)
    return table


class TestInitialization:
    def test_feasible_pairs_found(self, table, small_instance):
        assert table.num_pairs() > 0
        assert not table.empty

    def test_entries_have_feasible_routes(self, table, small_instance):
        for worker in small_instance.workers:
            for task_id, entry in table.worker_candidates(worker.worker_id).items():
                timing = entry.route.simulate()
                assert timing.feasible
                assert entry.route.covers_all_travel_tasks()
                assert task_id in {t.task_id for t in entry.route.sensing_tasks}

    def test_delta_incentive_within_budget(self, table, small_instance):
        # The paper's constraint is <=: exactly exhausting the budget is
        # feasible.
        for worker in small_instance.workers:
            for entry in table.worker_candidates(worker.worker_id).values():
                assert entry.delta_incentive <= small_instance.budget

    def test_delta_incentive_matches_route(self, table, small_instance):
        model = IncentiveModel(mu=small_instance.mu)
        for worker in small_instance.workers:
            model.set_base_rtt(worker, table.incentives.base_rtt(worker))
            for entry in table.worker_candidates(worker.worker_id).values():
                expected = model.incentive(worker, entry.route_travel_time)
                assert entry.delta_incentive == pytest.approx(expected)

    def test_base_rtt_seeded(self, table, small_instance):
        for worker in small_instance.workers:
            assert table.incentives.base_rtt(worker) > 0

    def test_zero_budget_no_candidates(self, small_instance, planner):
        incentives = IncentiveModel(mu=small_instance.mu)
        empty = CandidateTable(planner, incentives)
        empty.initialize(small_instance.workers, small_instance.sensing_tasks,
                         0.0)
        # Only zero-cost insertions fit a zero budget; with off-route
        # tasks there are none.
        assert empty.num_pairs() == 0

    def test_contains(self, table, small_instance):
        worker_id = small_instance.workers[0].worker_id
        candidates = table.worker_candidates(worker_id)
        if candidates:
            task_id = next(iter(candidates))
            assert (worker_id, task_id) in table
        assert (999, 999) not in table


class TestUpdates:
    def test_remove_task_everywhere(self, table, small_instance):
        task_id = next(iter(table.candidate_task_ids()))
        table.remove_task(task_id)
        for worker in small_instance.workers:
            assert task_id not in table.worker_candidates(worker.worker_id)

    def test_prune_over_budget(self, table):
        before = table.num_pairs()
        table.prune_over_budget(0.0)
        assert table.num_pairs() == 0 or table.num_pairs() < before

    def test_recompute_worker_respects_assignment(self, table, small_instance):
        worker = small_instance.workers[0]
        candidates = table.worker_candidates(worker.worker_id)
        task_id = next(iter(candidates))
        assigned_task = small_instance.sensing_task(task_id)
        entry = candidates[task_id]
        remaining = [s for s in small_instance.sensing_tasks
                     if s.task_id != task_id]
        table.recompute_worker(worker, [assigned_task], remaining,
                               entry.delta_incentive,
                               small_instance.budget - entry.delta_incentive,
                               current_route_tasks=entry.route.tasks)
        for new_id, new_entry in table.worker_candidates(worker.worker_id).items():
            sensing_ids = {t.task_id for t in new_entry.route.sensing_tasks}
            assert task_id in sensing_ids  # assigned task still on route
            assert new_id in sensing_ids

    def test_workers_with_candidates(self, table, small_instance):
        ids = table.workers_with_candidates()
        assert set(ids).issubset({w.worker_id for w in small_instance.workers})

    def test_planner_call_counting(self, table):
        assert table.planner_calls > 0


class TestBudgetBoundary:
    """Regression tests for the <= budget constraint (Section III-B).

    Entries whose marginal cost exactly exhausts the remaining budget are
    feasible; the pre-fix strict-< comparison wrongly excluded them.
    """

    def test_prune_keeps_exact_budget_entry(self, table):
        worker_id = table.workers_with_candidates()[0]
        task_id, entry = next(iter(table.worker_candidates(worker_id).items()))
        table.prune_over_budget(entry.delta_incentive)
        assert (worker_id, task_id) in table

    def test_prune_drops_over_budget_entry(self, table):
        worker_id = table.workers_with_candidates()[0]
        task_id, entry = next(iter(table.worker_candidates(worker_id).items()))
        table.prune_over_budget(entry.delta_incentive - 1e-9)
        assert (worker_id, task_id) not in table

    def test_initialize_keeps_exact_budget_assignment(self, small_instance,
                                                      planner):
        from repro.core import IncentiveModel

        # First pass at unlimited budget to learn each entry's true cost.
        probe = CandidateTable(planner, IncentiveModel(mu=small_instance.mu))
        probe.initialize(small_instance.workers,
                         small_instance.sensing_tasks, float("inf"))
        worker_id = probe.workers_with_candidates()[0]
        task_id, entry = next(iter(probe.worker_candidates(worker_id).items()))
        assert entry.delta_incentive > 0

        # Re-initialise with a budget exactly equal to that cost: the pair
        # must survive.
        exact = CandidateTable(planner, IncentiveModel(mu=small_instance.mu))
        exact.initialize(small_instance.workers,
                         small_instance.sensing_tasks, entry.delta_incentive)
        assert (worker_id, task_id) in exact


class TestCopy:
    def test_copy_is_structurally_identical(self, table, small_instance):
        clone = table.copy()
        assert clone.num_pairs() == table.num_pairs()
        assert clone.planner_calls == table.planner_calls
        for worker in small_instance.workers:
            original = table.worker_candidates(worker.worker_id)
            copied = clone.worker_candidates(worker.worker_id)
            assert set(original) == set(copied)
            for task_id in original:
                # Entries are frozen and shared, not re-planned.
                assert copied[task_id] is original[task_id]

    def test_copy_isolated_from_mutation(self, table):
        clone = table.copy()
        task_id = next(iter(table.candidate_task_ids()))
        clone.remove_task(task_id)
        assert any(task_id in table.worker_candidates(w)
                   for w in table.workers_with_candidates())


class TestBatchedPlannerPath:
    """RL backends expose plan_many; the table must use it transparently."""

    @pytest.fixture
    def gpn_table(self, small_instance):
        from repro.smore import CandidateTable
        from repro.tsptw import GPNSolver, make_default_gpn

        region = small_instance.coverage.grid.region
        model = make_default_gpn(region, 240.0, d_model=16, seed=0)
        planner = GPNSolver(model, repair=True)
        incentives = IncentiveModel(mu=small_instance.mu)
        table = CandidateTable(planner, incentives)
        table.initialize(small_instance.workers,
                         small_instance.sensing_tasks,
                         small_instance.budget)
        return table

    def test_batched_init_counts_all_pairs(self, gpn_table, small_instance):
        expected = small_instance.num_workers * small_instance.num_sensing_tasks
        assert gpn_table.planner_calls == expected

    def test_batched_entries_feasible(self, gpn_table, small_instance):
        for worker in small_instance.workers:
            for entry in gpn_table.worker_candidates(worker.worker_id).values():
                assert entry.route.simulate().feasible
                assert entry.route.covers_all_travel_tasks()

    def test_batched_matches_unbatched_feasibility_semantics(
            self, gpn_table, small_instance):
        # Every stored entry respects the budget bound of Algorithm 1.
        for worker in small_instance.workers:
            for entry in gpn_table.worker_candidates(worker.worker_id).values():
                assert entry.delta_incentive < small_instance.budget


class TestIncrementalIndex:
    """The incrementally-maintained worker/task indexes must always agree
    with a brute-force rebuild from the underlying table."""

    @staticmethod
    def _check(table):
        ref_workers = [w for w, row in table._table.items() if row]
        ref_tasks = set()
        for row in table._table.values():
            ref_tasks.update(row)
        assert table.workers_with_candidates() == ref_workers
        assert table.candidate_task_ids() == ref_tasks
        assert table.num_candidate_tasks() == len(ref_tasks)
        assert table.empty == (not ref_tasks)

    def test_initialize_consistent(self, table):
        assert not table.empty
        self._check(table)

    def test_remove_task_transitions_to_empty(self, table, small_instance):
        for task in small_instance.sensing_tasks:
            table.remove_task(task.task_id)
            self._check(table)
        assert table.empty
        assert table.workers_with_candidates() == []
        assert table.num_candidate_tasks() == 0

    def test_prune_transitions(self, table):
        table.prune_over_budget(0.0)
        self._check(table)

    def test_recompute_worker_reindexes(self, table, small_instance):
        worker = small_instance.workers[0]
        candidates = table.worker_candidates(worker.worker_id)
        task_id = next(iter(candidates))
        entry = candidates[task_id]
        assigned = small_instance.sensing_task(task_id)
        remaining = [s for s in small_instance.sensing_tasks
                     if s.task_id != task_id]
        table.remove_task(task_id)
        self._check(table)
        table.recompute_worker(worker, [assigned], remaining,
                               entry.delta_incentive,
                               small_instance.budget - entry.delta_incentive,
                               current_route_tasks=entry.route.tasks)
        self._check(table)

    def test_workers_order_matches_table_order(self, table):
        # Tie-breaking in _best_candidate_pair observes table order, so the
        # cached list must preserve it, not set order.
        order = [w for w in table._table if table.worker_candidates(w)]
        assert table.workers_with_candidates() == order

    def test_copy_isolates_index(self, table):
        clone = table.copy()
        task_id = next(iter(table.candidate_task_ids()))
        table.remove_task(task_id)
        assert task_id in clone.candidate_task_ids()
        self._check(clone)
        self._check(table)
