"""Tests for the candidate assignment table (Algorithm 1 step 1 / lines 15-23)."""

import pytest

from repro.core import IncentiveModel
from repro.smore import CandidateTable


@pytest.fixture
def table(small_instance, planner):
    incentives = IncentiveModel(mu=small_instance.mu)
    table = CandidateTable(planner, incentives)
    table.initialize(small_instance.workers, small_instance.sensing_tasks,
                     small_instance.budget)
    return table


class TestInitialization:
    def test_feasible_pairs_found(self, table, small_instance):
        assert table.num_pairs() > 0
        assert not table.empty

    def test_entries_have_feasible_routes(self, table, small_instance):
        for worker in small_instance.workers:
            for task_id, entry in table.worker_candidates(worker.worker_id).items():
                timing = entry.route.simulate()
                assert timing.feasible
                assert entry.route.covers_all_travel_tasks()
                assert task_id in {t.task_id for t in entry.route.sensing_tasks}

    def test_delta_incentive_within_budget(self, table, small_instance):
        for worker in small_instance.workers:
            for entry in table.worker_candidates(worker.worker_id).values():
                assert entry.delta_incentive < small_instance.budget

    def test_delta_incentive_matches_route(self, table, small_instance):
        model = IncentiveModel(mu=small_instance.mu)
        for worker in small_instance.workers:
            model.set_base_rtt(worker, table.incentives.base_rtt(worker))
            for entry in table.worker_candidates(worker.worker_id).values():
                expected = model.incentive(worker, entry.route_travel_time)
                assert entry.delta_incentive == pytest.approx(expected)

    def test_base_rtt_seeded(self, table, small_instance):
        for worker in small_instance.workers:
            assert table.incentives.base_rtt(worker) > 0

    def test_zero_budget_no_candidates(self, small_instance, planner):
        incentives = IncentiveModel(mu=small_instance.mu)
        empty = CandidateTable(planner, incentives)
        empty.initialize(small_instance.workers, small_instance.sensing_tasks,
                         0.0)
        # delta >= 0 never < 0 -> only strictly-free insertions survive;
        # with off-route tasks there are none.
        assert empty.num_pairs() == 0

    def test_contains(self, table, small_instance):
        worker_id = small_instance.workers[0].worker_id
        candidates = table.worker_candidates(worker_id)
        if candidates:
            task_id = next(iter(candidates))
            assert (worker_id, task_id) in table
        assert (999, 999) not in table


class TestUpdates:
    def test_remove_task_everywhere(self, table, small_instance):
        task_id = next(iter(table.candidate_task_ids()))
        table.remove_task(task_id)
        for worker in small_instance.workers:
            assert task_id not in table.worker_candidates(worker.worker_id)

    def test_prune_over_budget(self, table):
        before = table.num_pairs()
        table.prune_over_budget(0.0)
        assert table.num_pairs() == 0 or table.num_pairs() < before

    def test_recompute_worker_respects_assignment(self, table, small_instance):
        worker = small_instance.workers[0]
        candidates = table.worker_candidates(worker.worker_id)
        task_id = next(iter(candidates))
        assigned_task = small_instance.sensing_task(task_id)
        entry = candidates[task_id]
        remaining = [s for s in small_instance.sensing_tasks
                     if s.task_id != task_id]
        table.recompute_worker(worker, [assigned_task], remaining,
                               entry.delta_incentive,
                               small_instance.budget - entry.delta_incentive,
                               current_route_tasks=entry.route.tasks)
        for new_id, new_entry in table.worker_candidates(worker.worker_id).items():
            sensing_ids = {t.task_id for t in new_entry.route.sensing_tasks}
            assert task_id in sensing_ids  # assigned task still on route
            assert new_id in sensing_ids

    def test_workers_with_candidates(self, table, small_instance):
        ids = table.workers_with_candidates()
        assert set(ids).issubset({w.worker_id for w in small_instance.workers})

    def test_planner_call_counting(self, table):
        assert table.planner_calls > 0


class TestBatchedPlannerPath:
    """RL backends expose plan_many; the table must use it transparently."""

    @pytest.fixture
    def gpn_table(self, small_instance):
        from repro.smore import CandidateTable
        from repro.tsptw import GPNSolver, make_default_gpn

        region = small_instance.coverage.grid.region
        model = make_default_gpn(region, 240.0, d_model=16, seed=0)
        planner = GPNSolver(model, repair=True)
        incentives = IncentiveModel(mu=small_instance.mu)
        table = CandidateTable(planner, incentives)
        table.initialize(small_instance.workers,
                         small_instance.sensing_tasks,
                         small_instance.budget)
        return table

    def test_batched_init_counts_all_pairs(self, gpn_table, small_instance):
        expected = small_instance.num_workers * small_instance.num_sensing_tasks
        assert gpn_table.planner_calls == expected

    def test_batched_entries_feasible(self, gpn_table, small_instance):
        for worker in small_instance.workers:
            for entry in gpn_table.worker_candidates(worker.worker_id).values():
                assert entry.route.simulate().feasible
                assert entry.route.covers_all_travel_tasks()

    def test_batched_matches_unbatched_feasibility_semantics(
            self, gpn_table, small_instance):
        # Every stored entry respects the budget bound of Algorithm 1.
        for worker in small_instance.workers:
            for entry in gpn_table.worker_candidates(worker.worker_id).values():
                assert entry.delta_incentive < small_instance.budget
