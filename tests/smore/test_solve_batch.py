"""Incremental batch submission: SolveBatch admission + execution.

``SMORESolver.open_batch`` is the serving layer's admission surface:
requests are admitted one at a time, each with its own decode mode and
deadline, and execution decodes the whole heterogeneous batch in
lock-step.  The contract under test: tickets align with results,
admission control (size cap, expired deadlines) rejects without
touching admitted work, queued-deadline expiry sheds to ``None`` slots,
and batching never changes any request's answer.
"""

import numpy as np
import pytest

from repro.datasets.instances import InstanceOptions, generate_instances
from repro.smore import (
    BatchFull,
    DeadlineExpired,
    SMORESolver,
    TASNet,
    TASNetConfig,
    TASNetPolicy,
)
from repro.smore.solver import SolveBatch
from repro.tsptw import InsertionSolver

CONFIG = TASNetConfig(d_model=16, num_heads=2, num_layers=1, conv_channels=4)


@pytest.fixture(scope="module")
def instances():
    """Heterogeneous S/W mix: different densities and worker counts."""
    base = InstanceOptions(task_density=0.04, budget=120.0)
    sparse = InstanceOptions(task_density=0.02, budget=120.0, num_workers=3)
    dense = InstanceOptions(task_density=0.06, budget=150.0)
    insts = (generate_instances("delivery", 1, seed=7, options=base)
             + generate_instances("delivery", 1, seed=11, options=sparse)
             + generate_instances("delivery", 1, seed=13, options=dense))
    sizes = {(len(i.workers), len(i.sensing_tasks)) for i in insts}
    assert len(sizes) == len(insts), "fixture must be shape-heterogeneous"
    return insts


def _solver(instances):
    grid = instances[0].coverage.grid
    net = TASNet(CONFIG, grid_nx=grid.nx, grid_ny=grid.ny,
                 rng=np.random.default_rng(0))
    return SMORESolver(InsertionSolver(), TASNetPolicy(net))


def _routes(solution):
    return sorted((wid, tuple(t.task_id for t in route.tasks))
                  for wid, route in solution.routes.items())


class _FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestAdmission:
    def test_tickets_are_sequential(self, instances):
        batch = _solver(instances).open_batch()
        tickets = [batch.admit(inst) for inst in instances]
        assert tickets == [0, 1, 2]
        assert len(batch) == 3

    def test_batch_full_rejects(self, instances):
        batch = _solver(instances).open_batch(max_size=2)
        batch.admit(instances[0])
        batch.admit(instances[1])
        assert batch.is_full
        with pytest.raises(BatchFull):
            batch.admit(instances[2])
        # The admitted requests are untouched by the rejection.
        assert len(batch) == 2

    def test_expired_deadline_rejects_at_admit(self, instances):
        clock = _FakeClock(now=10.0)
        batch = _solver(instances).open_batch(clock=clock)
        with pytest.raises(DeadlineExpired):
            batch.admit(instances[0], deadline=9.0)
        assert len(batch) == 0

    def test_bad_max_size_raises(self, instances):
        with pytest.raises(ValueError, match="max_size"):
            _solver(instances).open_batch(max_size=0)

    def test_admit_after_execute_raises(self, instances):
        batch = _solver(instances).open_batch()
        batch.admit(instances[0])
        batch.execute()
        with pytest.raises(RuntimeError, match="already executed"):
            batch.admit(instances[1])
        with pytest.raises(RuntimeError, match="already executed"):
            batch.execute()

    def test_execute_empty_batch_raises(self, instances):
        with pytest.raises(ValueError, match="empty batch"):
            _solver(instances).open_batch().execute()


class TestExecution:
    def test_matches_solve_many_and_solo(self, instances):
        solo = _solver(instances)
        expected = [solo.solve(inst) for inst in instances]

        batched = _solver(instances)
        batch = batched.open_batch()
        for inst in instances:
            batch.admit(inst)
        got = batch.execute()
        for a, b in zip(expected, got):
            assert _routes(a) == _routes(b)
            assert a.incentives == b.incentives
            assert a.objective == b.objective

    def test_single_request_degenerate_batch(self, instances):
        """B=1: the batch path collapses to one instance and must still
        be bit-identical to the direct solve."""
        direct = _solver(instances).solve(instances[0])
        batch = _solver(instances).open_batch()
        batch.admit(instances[0])
        (solution,) = batch.execute()
        assert _routes(direct) == _routes(solution)
        assert direct.incentives == solution.incentives

    def test_mixed_modes_per_request(self, instances):
        """Greedy and sampled requests share one batch; each one's answer
        matches its independent solve."""
        solo = _solver(instances)
        want_greedy = solo.solve(instances[0])
        want_sampled = solo.solve(instances[1], greedy=False,
                                  rng=np.random.default_rng(99),
                                  num_samples=3)

        batched = _solver(instances)
        batch = batched.open_batch()
        batch.admit(instances[0], greedy=True)
        batch.admit(instances[1], greedy=False,
                    rng=np.random.default_rng(99), num_samples=3)
        got_greedy, got_sampled = batch.execute()
        assert _routes(want_greedy) == _routes(got_greedy)
        assert _routes(want_sampled) == _routes(got_sampled)

    def test_queued_deadline_expiry_sheds_to_none(self, instances):
        clock = _FakeClock(now=0.0)
        solver = _solver(instances)
        expected = solver.solve(instances[1])

        batch = solver.open_batch(clock=clock)
        batch.admit(instances[0], deadline=5.0)
        batch.admit(instances[1])
        clock.now = 6.0      # first request expires while queued
        shed, live = batch.execute()
        assert shed is None
        assert _routes(live) == _routes(expected)

    def test_all_requests_shed_returns_all_none(self, instances):
        clock = _FakeClock(now=0.0)
        batch = _solver(instances).open_batch(clock=clock)
        batch.admit(instances[0], deadline=1.0)
        clock.now = 2.0
        assert batch.execute() == [None]

    def test_env_factory_supplies_warm_envs(self, instances):
        """A factory-held env's candidate snapshot is reused across
        batches: the second batch replans nothing at init."""
        from repro.smore import SelectionEnv

        solver = _solver(instances)
        envs = {}

        def factory(instance):
            key = id(instance)
            if key not in envs:
                envs[key] = SelectionEnv(instance, solver.planner)
            return envs[key]

        first = solver.open_batch(env_factory=factory)
        first.admit(instances[0])
        (a,) = first.execute()
        assert a.perf.init_planner_calls > 0

        second = solver.open_batch(env_factory=factory)
        second.admit(instances[0])
        (b,) = second.execute()
        assert b.perf.init_planner_calls == 0        # snapshot reuse
        assert _routes(a) == _routes(b)

    def test_duplicate_instance_in_one_batch(self, instances):
        """The same warm env admitted twice in one batch: both answers
        match the direct solve; perf is attributed once."""
        from repro.smore import SelectionEnv

        solver = _solver(instances)
        direct = solver.solve(instances[0])
        env = SelectionEnv(instances[0], solver.planner)

        batch = solver.open_batch(env_factory=lambda inst: env)
        batch.admit(instances[0])
        batch.admit(instances[0])
        first, second = batch.execute()
        assert _routes(first) == _routes(direct)
        assert _routes(second) == _routes(direct)
        assert second.perf.rollouts == 0             # counted on the first
