"""Regressions for SelectionEnv snapshotting and incremental pool upkeep.

Two invariants pinned here:

* the candidate-table snapshot is taken **only** when ``reuse_candidates``
  is on — with it off, every reset replans and the env must not hold a
  (potentially live) table object it would later hand back corrupted;
* the ``unselected`` pool maintained incrementally on the state (one dict
  pop per step) stays bit-identical — same members, same iteration
  order — to filtering the instance task list from scratch.
"""

import numpy as np

from repro.datasets import InstanceOptions, generate_instances
from repro.smore import GreedySelectionRule, SelectionEnv
from repro.tsptw import InsertionSolver


def _instance(seed=11):
    return generate_instances(
        "delivery", 1, seed=seed,
        options=InstanceOptions(task_density=0.04, num_workers=3))[0]


class TestSnapshotOnlyWhenReusing:
    def test_no_snapshot_without_reuse(self):
        instance = _instance()
        env = SelectionEnv(instance, InsertionSolver(speed=instance.speed),
                           reuse_candidates=False)
        env.reset()
        assert env._snapshot is None
        # Every reset replans: init planner calls keep accruing.
        calls_after_first = env.perf.init_planner_calls
        env.reset()
        assert env.perf.init_planner_calls == 2 * calls_after_first

    def test_snapshot_is_not_the_live_table(self):
        instance = _instance()
        env = SelectionEnv(instance, InsertionSolver(speed=instance.speed),
                           reuse_candidates=True)
        state = env.reset()
        assert env._snapshot is not None
        assert state.candidates is not env._snapshot

    def test_episode_mutation_cannot_corrupt_snapshot(self):
        instance = _instance()
        env = SelectionEnv(instance, InsertionSolver(speed=instance.speed),
                           reuse_candidates=True)
        policy = GreedySelectionRule()
        state = env.reset()
        pristine = [(wid, list(row))
                    for wid, row in env._snapshot._table.items()]
        policy.begin_episode(instance)
        while not state.done:
            action = policy.act(state)
            state, _, _ = env.step(action.worker_id, action.task_id)
        assert [(wid, list(row))
                for wid, row in env._snapshot._table.items()] == pristine
        fresh = env.reset()
        assert [(wid, list(row))
                for wid, row in fresh.candidates._table.items()] == pristine


class TestIncrementalUnselectedPool:
    def test_pool_matches_fresh_filter_every_step(self):
        instance = _instance(seed=13)
        env = SelectionEnv(instance, InsertionSolver(speed=instance.speed))
        policy = GreedySelectionRule()
        state = env.reset()
        policy.begin_episode(instance)
        steps = 0
        while not state.done:
            selected_ids = {t.task_id for t in state.selected}
            expected = [s for s in instance.sensing_tasks
                        if s.task_id not in selected_ids]
            # Same members AND same iteration order as the from-scratch
            # filter the env used to rebuild each step.
            assert list(state.unselected) == [s.task_id for s in expected]
            assert list(state.unselected.values()) == expected
            action = policy.act(state)
            state, _, _ = env.step(action.worker_id, action.task_id)
            steps += 1
        assert steps > 0
        selected_ids = {t.task_id for t in state.selected}
        assert list(state.unselected) == [
            s.task_id for s in instance.sensing_tasks
            if s.task_id not in selected_ids]

    def test_reset_restores_full_pool(self):
        instance = _instance(seed=17)
        env = SelectionEnv(instance, InsertionSolver(speed=instance.speed))
        policy = GreedySelectionRule()
        state = env.reset()
        policy.begin_episode(instance)
        while not state.done:
            action = policy.act(state)
            state, _, _ = env.step(action.worker_id, action.task_id)
        fresh = env.reset()
        assert list(fresh.unselected) == [
            s.task_id for s in instance.sensing_tasks]
