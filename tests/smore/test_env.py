"""Tests for the selection MDP environment (Section IV-A semantics)."""

import pytest

from repro.smore import SelectionEnv


@pytest.fixture
def env(small_instance, planner):
    return SelectionEnv(small_instance, planner)


def first_action(state):
    worker_id = state.feasible_worker_ids()[0]
    task_id = next(iter(state.candidates.worker_candidates(worker_id)))
    return worker_id, task_id


class TestReset:
    def test_initial_state(self, env, small_instance):
        state = env.reset()
        assert state.budget_rest == small_instance.budget
        assert state.selected == []
        assert state.step_count == 0
        assert not state.done

    def test_step_before_reset_raises(self, env):
        with pytest.raises(RuntimeError):
            env.step(1, 100)


class TestStep:
    def test_reward_is_coverage_gain(self, env, small_instance):
        state = env.reset()
        worker_id, task_id = first_action(state)
        expected = state.coverage.gain(small_instance.sensing_task(task_id))
        _, reward, _ = env.step(worker_id, task_id)
        assert reward == pytest.approx(expected)

    def test_budget_decreases_by_delta(self, env, small_instance):
        state = env.reset()
        worker_id, task_id = first_action(state)
        delta = state.candidates.get(worker_id, task_id).delta_incentive
        state, _, _ = env.step(worker_id, task_id)
        assert state.budget_rest == pytest.approx(
            small_instance.budget - delta)

    def test_assignment_recorded(self, env, small_instance):
        state = env.reset()
        worker_id, task_id = first_action(state)
        state, _, _ = env.step(worker_id, task_id)
        slot = state.assignments[worker_id]
        assert [t.task_id for t in slot.assigned] == [task_id]
        assert slot.route is not None
        assert task_id in {t.task_id for t in slot.route.sensing_tasks}

    def test_selected_task_removed_from_all_candidates(self, env,
                                                       small_instance):
        state = env.reset()
        worker_id, task_id = first_action(state)
        state, _, _ = env.step(worker_id, task_id)
        for worker in small_instance.workers:
            assert task_id not in state.candidates.worker_candidates(
                worker.worker_id)

    def test_invalid_action_raises(self, env):
        env.reset()
        with pytest.raises(KeyError):
            env.step(999, 999)

    def test_episode_terminates(self, env):
        state = env.reset()
        for _ in range(200):
            if state.done:
                break
            worker_id, task_id = first_action(state)
            state, _, _ = env.step(worker_id, task_id)
        assert state.done

    def test_budget_never_negative(self, env):
        state = env.reset()
        while not state.done:
            worker_id, task_id = first_action(state)
            state, _, _ = env.step(worker_id, task_id)
        assert state.budget_rest >= -1e-9

    def test_total_reward_equals_phi(self, env):
        state = env.reset()
        total = 0.0
        while not state.done:
            worker_id, task_id = first_action(state)
            state, reward, _ = env.step(worker_id, task_id)
            total += reward
        assert total == pytest.approx(state.phi())

    def test_coverage_tracks_selected(self, env):
        state = env.reset()
        worker_id, task_id = first_action(state)
        state, _, _ = env.step(worker_id, task_id)
        assert state.coverage.total == 1
        assert len(state.selected) == 1
