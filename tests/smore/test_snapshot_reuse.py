"""Snapshot reuse: repeated resets must not replan, and must be equivalent.

The initial candidate table depends only on the (immutable) instance and
the planner, so ``SelectionEnv.reset()`` computes it once and restores it
by structural copy afterwards.  These tests pin the three guarantees:
no planner calls on later resets, bit-identical tables, and identical
solutions with and without reuse.
"""

import numpy as np
import pytest

from repro.smore import (
    RatioSelectionRule,
    SelectionEnv,
    SMORESolver,
    run_episode,
)
from repro.tsptw import InsertionSolver


class CountingPlanner:
    """InsertionSolver wrapper counting actual backend invocations."""

    def __init__(self):
        self.inner = InsertionSolver()
        self.speed = self.inner.speed
        self.calls = 0

    def plan(self, worker, sensing_tasks):
        self.calls += 1
        return self.inner.plan(worker, sensing_tasks)

    def plan_with_insertion(self, worker, base_tasks, new_task):
        self.calls += 1
        return self.inner.plan_with_insertion(worker, base_tasks, new_task)

    def base_route(self, worker):
        self.calls += 1
        return self.inner.base_route(worker)


def table_signature(state):
    return {
        worker_id: {
            task_id: (entry.delta_incentive,
                      tuple(t.task_id for t in entry.route.tasks))
            for task_id, entry in state.candidates.worker_candidates(
                worker_id).items()
        }
        for worker_id in state.candidates.workers_with_candidates()
    }


class TestSnapshotReuse:
    def test_second_reset_issues_no_planner_calls(self, small_instance):
        planner = CountingPlanner()
        env = SelectionEnv(small_instance, planner)
        env.reset()
        calls_after_first = planner.calls
        assert calls_after_first > 0
        env.reset()
        assert planner.calls == calls_after_first

    def test_reset_twice_yields_identical_tables(self, small_instance,
                                                 planner):
        env = SelectionEnv(small_instance, planner)
        first = table_signature(env.reset())
        second = table_signature(env.reset())
        assert first == second

    def test_reuse_matches_fresh_initialisation(self, small_instance,
                                                planner):
        reused = SelectionEnv(small_instance, planner)
        reused.reset()
        fresh = SelectionEnv(small_instance, planner,
                             reuse_candidates=False)
        fresh.reset()
        assert table_signature(reused.reset()) == table_signature(
            fresh.reset())

    def test_mutating_an_episode_does_not_leak_into_snapshot(
            self, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        before = table_signature(state)
        rule = RatioSelectionRule()
        rule.begin_episode(small_instance)
        while not state.done:
            action = rule.act(state)
            state, _, _ = env.step(action.worker_id, action.task_id)
        assert table_signature(env.reset()) == before

    def test_identical_solutions_across_episodes(self, small_instance,
                                                 planner):
        env = SelectionEnv(small_instance, planner)
        rule = RatioSelectionRule()
        first, _, _ = run_episode(env, rule)
        second, _, _ = run_episode(env, rule)

        def assigned_ids(state):
            return {slot.worker.worker_id: [t.task_id for t in slot.assigned]
                    for slot in state.assignments}

        assert first.phi() == second.phi()
        assert assigned_ids(first) == assigned_ids(second)

    def test_perf_counts_init_once(self, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        env.reset()
        init_calls = env.perf.init_planner_calls
        env.reset()
        env.reset()
        assert env.perf.init_planner_calls == init_calls
        assert env.perf.rollouts == 3


class TestSolverCounters:
    def test_multi_sample_inits_once(self, small_instance):
        planner = CountingPlanner()
        solver = SMORESolver(planner, RatioSelectionRule())
        solution = solver.solve(small_instance, num_samples=8,
                                rng=np.random.default_rng(0))
        W = small_instance.num_workers
        S = small_instance.num_sensing_tasks
        # Acceptance criterion: candidate initialisation planner calls are
        # issued once, not 8x.
        assert solution.perf is not None
        assert solution.perf.init_planner_calls == W * S
        assert solution.perf.rollouts == 8

    def test_single_solve_records_phase_times(self, small_instance, planner):
        solution = SMORESolver(planner, RatioSelectionRule()).solve(
            small_instance)
        assert solution.perf.init_time > 0
        assert solution.perf.selection_time > 0
        assert solution.perf.planner_calls >= solution.perf.init_planner_calls

    def test_parallel_solve_matches_serial(self, small_instance, planner):
        solver = SMORESolver(planner, RatioSelectionRule())
        serial = solver.solve(small_instance, num_samples=4,
                              rng=np.random.default_rng(3))
        parallel = solver.solve(small_instance, num_samples=4,
                                rng=np.random.default_rng(3), workers=2)
        assert serial.objective == parallel.objective
        assert {w: [t.task_id for t in r.tasks]
                for w, r in serial.routes.items()} \
            == {w: [t.task_id for t in r.tasks]
                for w, r in parallel.routes.items()}
        assert serial.perf.planner_calls == parallel.perf.planner_calls
