"""EpisodeStaticsCache: residency counters, LRU bounds, solve parity.

The cache keeps the per-instance static encoder pass (travel-grid conv,
task encoder, pointer keys) resident across episodes.  Two promises:
cached statics never change an answer (the cached tensors ARE the cold
pass's objects), and the LRU stays bounded with identity-keyed entries
pinning their instances.
"""

import numpy as np
import pytest

from repro.datasets.instances import InstanceOptions, generate_instances
from repro.smore import (
    EpisodeStaticsCache,
    SMORESolver,
    TASNet,
    TASNetConfig,
    TASNetPolicy,
)
from repro.tsptw import InsertionSolver

CONFIG = TASNetConfig(d_model=16, num_heads=2, num_layers=1, conv_channels=4)


@pytest.fixture(scope="module")
def instances():
    return generate_instances(
        "delivery", 3, seed=11,
        options=InstanceOptions(task_density=0.03))


def _policy(instances):
    grid = instances[0].coverage.grid
    net = TASNet(CONFIG, grid_nx=grid.nx, grid_ny=grid.ny,
                 rng=np.random.default_rng(0))
    return TASNetPolicy(net)


def _routes(solution):
    return sorted((wid, tuple(t.task_id for t in route.tasks))
                  for wid, route in solution.routes.items())


class TestCacheMechanics:
    def test_repeat_episode_hits_and_skips_reencoding(self, instances):
        policy = _policy(instances)
        policy.statics_cache = cache = EpisodeStaticsCache(max_instances=4)
        policy.begin_episode(instances[0])
        assert (cache.hits, cache.misses) == (0, 1)
        first = policy._worker_emb
        policy.begin_episode(instances[0])
        assert (cache.hits, cache.misses) == (1, 1)
        # The cached statics are the very objects the cold pass produced.
        assert policy._worker_emb is first

    def test_lru_eviction_keeps_most_recent(self, instances):
        policy = _policy(instances)
        policy.statics_cache = cache = EpisodeStaticsCache(max_instances=2)
        for inst in instances:          # third insert evicts instances[0]
            policy.begin_episode(inst)
        assert cache.evictions == 1
        assert len(cache) == 2
        policy.begin_episode(instances[0])      # evicted: re-encoded
        assert cache.misses == 4
        policy.begin_episode(instances[2])      # still resident
        assert cache.hits == 1

    def test_clear_empties_and_forces_reencode(self, instances):
        policy = _policy(instances)
        policy.statics_cache = cache = EpisodeStaticsCache()
        policy.begin_episode(instances[0])
        cache.clear()
        assert len(cache) == 0
        policy.begin_episode(instances[0])
        assert cache.misses == 2

    def test_bad_capacity(self):
        with pytest.raises(ValueError, match="max_instances"):
            EpisodeStaticsCache(max_instances=0)


class TestSolveParity:
    def test_cached_solve_bit_identical_to_cold(self, instances):
        """Greedy solves with a warm statics cache match cold solves on
        routes, incentives and objective — residency never changes the
        answer."""
        cold = SMORESolver(InsertionSolver(), _policy(instances))
        want = [cold.solve(inst) for inst in instances]

        policy = _policy(instances)
        policy.statics_cache = cache = EpisodeStaticsCache()
        warm = SMORESolver(InsertionSolver(), policy)
        for _ in range(2):              # second sweep runs fully cached
            for inst, reference in zip(instances, want):
                got = warm.solve(inst)
                assert _routes(got) == _routes(reference)
                assert got.incentives == reference.incentives
                assert got.objective == reference.objective
        assert cache.hits == len(instances)

    def test_batched_decode_uses_cache(self, instances):
        """begin_episodes (cross-instance decode) shares the same cache
        entries as per-instance episodes."""
        policy = _policy(instances)
        policy.statics_cache = cache = EpisodeStaticsCache()
        policy.begin_episode(instances[0])
        policy.begin_episodes(list(instances))
        assert cache.hits == 1          # instances[0] recalled
        assert cache.misses == len(instances)
