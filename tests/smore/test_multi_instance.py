"""Cross-instance lock-step decoding: parity with independent solves.

``MultiInstanceRunner`` / ``SMORESolver.solve_many`` /
``TrainingConfig.cross_instance_batch`` decode B heterogeneous instances
through shared batched forwards.  The contract under test: batching is
*only* an execution strategy — every rollout consumes its own generator
in the serial worker-then-task order, and every planner call resolves
through the worker's own instance — so results match B independent
per-instance runs action-for-action, including across ragged worker/task
counts and a shared (memoising or kernel-bound) planner.
"""

import numpy as np
import pytest

from repro.datasets.instances import InstanceOptions, generate_instances
from repro.smore import (
    BatchedEpisodeRunner,
    GreedySelectionRule,
    MultiInstanceRunner,
    SMORESolver,
    SelectionEnv,
    TASNet,
    TASNetConfig,
    TASNetPolicy,
    TASNetTrainer,
    TrainingConfig,
)
from repro.tsptw import CachedPlanner, InsertionSolver

CONFIG = TASNetConfig(d_model=16, num_heads=2, num_layers=1, conv_channels=4)


@pytest.fixture(scope="module")
def instances():
    """Three delivery instances with ragged worker/task counts."""
    opts = InstanceOptions(task_density=0.04, budget=120.0)
    insts = generate_instances("delivery", 3, seed=7, options=opts)
    sizes = {(len(i.workers), len(i.sensing_tasks)) for i in insts}
    assert len(sizes) > 1, "fixture should exercise ragged batches"
    return insts


def _make_net(instances):
    grid = instances[0].coverage.grid
    return TASNet(CONFIG, grid_nx=grid.nx, grid_ny=grid.ny,
                  rng=np.random.default_rng(0))


def _routes(solution):
    return sorted((wid, tuple(t.task_id for t in route.tasks))
                  for wid, route in solution.routes.items())


# --------------------------------------------------------------------- #
# solve_many parity
# --------------------------------------------------------------------- #
class TestSolveManyParity:
    def test_greedy_matches_independent_solves(self, instances):
        net = _make_net(instances)
        solo = SMORESolver(InsertionSolver(), TASNetPolicy(net))
        expected = [solo.solve(inst) for inst in instances]
        many = SMORESolver(InsertionSolver(), TASNetPolicy(net))
        got = many.solve_many(instances)
        assert len(got) == len(instances)
        for a, b in zip(expected, got):
            assert _routes(a) == _routes(b)
            assert a.objective == b.objective

    def test_sampled_matches_independent_solves(self, instances):
        net = _make_net(instances)
        solo = SMORESolver(InsertionSolver(), TASNetPolicy(net))
        expected = [solo.solve(inst, greedy=False,
                               rng=np.random.default_rng(1234 + i),
                               num_samples=4)
                    for i, inst in enumerate(instances)]
        many = SMORESolver(InsertionSolver(), TASNetPolicy(net))
        got = many.solve_many(
            instances, greedy=False,
            rngs=[np.random.default_rng(1234 + i)
                  for i in range(len(instances))],
            num_samples=4)
        for a, b in zip(expected, got):
            assert _routes(a) == _routes(b)
            assert a.objective == b.objective

    def test_empty_instance_list_raises(self, instances):
        """An empty batch is a caller bug, not a no-op (the behaviour was
        previously unspecified; it is now an explicit error)."""
        net = _make_net(instances)
        solver = SMORESolver(InsertionSolver(), TASNetPolicy(net))
        with pytest.raises(ValueError, match="at least one instance"):
            solver.solve_many([])

    def test_single_instance_degenerate_batch(self, instances):
        """B=1 collapses to the one-instance path, bit-identically."""
        net = _make_net(instances)
        direct = SMORESolver(InsertionSolver(), TASNetPolicy(net)) \
            .solve(instances[0])
        (batched,) = SMORESolver(InsertionSolver(), TASNetPolicy(net)) \
            .solve_many(instances[:1])
        assert _routes(direct) == _routes(batched)
        assert direct.incentives == batched.incentives
        assert direct.objective == batched.objective

    def test_extreme_shape_mix(self, instances):
        """Instances built from different generator options (different
        worker counts, densities, budgets) share one decode batch."""
        opts = [InstanceOptions(task_density=0.02, budget=100.0,
                                num_workers=2),
                InstanceOptions(task_density=0.08, budget=150.0),
                InstanceOptions(task_density=0.04, budget=120.0,
                                num_workers=5)]
        mixed = [generate_instances("delivery", 1, seed=40 + i,
                                    options=opt)[0]
                 for i, opt in enumerate(opts)]
        shapes = {(len(i.workers), len(i.sensing_tasks)) for i in mixed}
        assert len(shapes) == len(mixed)

        net = _make_net(mixed)
        solo = SMORESolver(InsertionSolver(), TASNetPolicy(net))
        expected = [solo.solve(inst) for inst in mixed]
        got = SMORESolver(InsertionSolver(), TASNetPolicy(net)) \
            .solve_many(mixed)
        for a, b in zip(expected, got):
            assert _routes(a) == _routes(b)
            assert a.objective == b.objective

    def test_rng_count_mismatch_raises(self, instances):
        net = _make_net(instances)
        solver = SMORESolver(InsertionSolver(), TASNetPolicy(net))
        with pytest.raises(ValueError, match="rngs"):
            solver.solve_many(instances, greedy=False,
                              rngs=[np.random.default_rng(0)])

    def test_shared_cached_planner_stays_correct(self, instances):
        """A memoising planner shared across the batch must key per
        instance — worker and task ids collide across instances."""
        net = _make_net(instances)
        solo = SMORESolver(InsertionSolver(), TASNetPolicy(net))
        expected = [solo.solve(inst) for inst in instances]
        many = SMORESolver(CachedPlanner(InsertionSolver()),
                           TASNetPolicy(net))
        got = many.solve_many(instances)
        for a, b in zip(expected, got):
            assert _routes(a) == _routes(b)


# --------------------------------------------------------------------- #
# Runner mechanics
# --------------------------------------------------------------------- #
class TestMultiInstanceRunner:
    def test_groups_results_per_env(self, instances):
        net = _make_net(instances)
        policy = TASNetPolicy(net)
        planner = InsertionSolver()
        envs = [SelectionEnv(inst, planner) for inst in instances]
        specs = [[(True, None)], [], [(True, None), (False, 5)]]
        grouped = MultiInstanceRunner(envs, policy).run(specs)
        assert [len(g) for g in grouped] == [1, 0, 2]

    def test_spec_count_mismatch_raises(self, instances):
        net = _make_net(instances)
        envs = [SelectionEnv(inst, InsertionSolver()) for inst in instances]
        runner = MultiInstanceRunner(envs, TASNetPolicy(net))
        with pytest.raises(ValueError, match="spec lists"):
            runner.run([[(True, None)]])

    def test_matches_per_instance_batched_runner(self, instances):
        """B instances x K seeded rollouts == K rollouts per instance run
        separately, rollout-for-rollout (the RNG threading contract)."""
        net = _make_net(instances)
        specs = [[(False, 100 + 10 * e + k) for k in range(3)]
                 for e in range(len(instances))]

        policy = TASNetPolicy(net)
        expected = []
        for inst, env_specs in zip(instances, specs):
            env = SelectionEnv(inst, InsertionSolver())
            expected.append(BatchedEpisodeRunner(env, policy).run(
                env_specs, record_actions=True))

        policy = TASNetPolicy(net)
        planner = InsertionSolver()
        envs = [SelectionEnv(inst, planner) for inst in instances]
        grouped = MultiInstanceRunner(envs, policy).run(
            specs, record_actions=True)

        for env_expected, env_got in zip(expected, grouped):
            for a, b in zip(env_expected, env_got):
                assert [(r.worker_id, r.task_id) for r in a.records] == \
                    [(r.worker_id, r.task_id) for r in b.records]
                assert a.total_reward == b.total_reward

    def test_fallback_for_policy_without_begin_episodes(self, instances):
        """Policies lacking the multi protocol run per-env, same results."""
        planner = InsertionSolver()
        envs = [SelectionEnv(inst, planner) for inst in instances]
        grouped = MultiInstanceRunner(envs, GreedySelectionRule()).run(
            [[(True, None)] for _ in instances], record_actions=True)
        for inst, results in zip(instances, grouped):
            env = SelectionEnv(inst, InsertionSolver())
            solo = BatchedEpisodeRunner(env, GreedySelectionRule()).run(
                [(True, None)], record_actions=True)
            assert [(r.worker_id, r.task_id) for r in solo[0].records] == \
                [(r.worker_id, r.task_id) for r in results[0].records]


# --------------------------------------------------------------------- #
# Shared-planner regression (the bug multi-instance decoding exposed)
# --------------------------------------------------------------------- #
class TestSharedPlannerBindings:
    def test_base_routes_survive_interleaved_bindings(self, instances):
        """Binding B instances on one solver must not cross their
        packed arrays or base-route memos (worker ids collide)."""
        shared = InsertionSolver()
        for inst in instances:
            shared.bind_instance(inst)
        interleaved = {}
        for inst in instances:
            for worker in inst.workers:
                result = shared.base_route(worker)
                interleaved[id(worker)] = (
                    result.feasible, result.route_travel_time)
        for inst in instances:
            fresh = InsertionSolver()
            fresh.bind_instance(inst)
            for worker in inst.workers:
                result = fresh.base_route(worker)
                assert interleaved[id(worker)] == (
                    result.feasible, result.route_travel_time)

    def test_insertion_sweeps_use_the_workers_own_instance(self, instances):
        shared = InsertionSolver()
        for inst in instances:
            shared.bind_instance(inst)
        # Interleave batched sweeps across instances; compare against a
        # fresh solver bound to only the worker's instance.
        for inst in instances:
            fresh = InsertionSolver()
            fresh.bind_instance(inst)
            for worker in inst.workers:
                tasks = inst.sensing_tasks[:6]
                got = shared.plan_insertions_many(worker, [], tasks)
                want = fresh.plan_insertions_many(worker, [], tasks)
                for g, w in zip(got, want):
                    assert g.feasible == w.feasible
                    if g.feasible:
                        assert g.route_travel_time == w.route_travel_time

    def test_cached_planner_does_not_collide_across_instances(self, instances):
        cached = CachedPlanner(InsertionSolver())
        first, second = instances[0], instances[1]
        w0, w1 = first.workers[0], second.workers[0]
        assert w0.worker_id == w1.worker_id  # ids DO collide
        r0 = cached.plan(w0, [])
        r1 = cached.plan(w1, [])
        assert r0.route.worker is w0
        assert r1.route.worker is w1


# --------------------------------------------------------------------- #
# Trainer cross-instance batching
# --------------------------------------------------------------------- #
class TestTrainerCrossInstanceBatch:
    def _trainer(self, instances, cross):
        net = _make_net(instances)
        cfg = TrainingConfig(batch_size=2, rollouts_per_instance=3,
                             cross_instance_batch=cross, seed=5)
        return TASNetTrainer(TASNetPolicy(net), InsertionSolver(), cfg)

    def test_metrics_and_params_match_serial_path(self, instances):
        serial = self._trainer(instances, cross=False)
        cross = self._trainer(instances, cross=True)
        for _ in range(2):
            m_serial = serial.train_iteration(instances)
            m_cross = cross.train_iteration(instances)
            # Same seeds, same action streams: identical mean rewards.
            assert m_serial == m_cross
        for p_serial, p_cross in zip(serial.policy.parameters(),
                                     cross.policy.parameters()):
            # Parameters agree to BLAS-reassociation tolerance (batched
            # GEMMs of different shapes may round differently).
            np.testing.assert_allclose(p_cross.data, p_serial.data,
                                       rtol=1e-12, atol=1e-12)
