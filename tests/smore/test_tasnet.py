"""Tests for TASNet's modules: encoders, worker selection, task selection."""

import numpy as np
import pytest

from repro import nn
from repro.smore import (
    SensingTaskEncoder,
    TASNet,
    TASNetConfig,
    TaskSelection,
    WorkerEncoder,
    WorkerSelection,
)


@pytest.fixture
def config():
    return TASNetConfig(d_model=8, num_heads=2, num_layers=1, conv_channels=2)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestConfig:
    def test_defaults_divisible(self):
        TASNetConfig()  # must not raise

    def test_invalid_heads(self):
        with pytest.raises(ValueError):
            TASNetConfig(d_model=10, num_heads=3)

    def test_soft_mask_flag(self):
        assert TASNetConfig().use_soft_mask
        assert not TASNetConfig(use_soft_mask=False).use_soft_mask


class TestWorkerEncoder:
    def test_output_shape(self, config, rng):
        encoder = WorkerEncoder(config, 4, 5, rng)
        grids = rng.random((3, 4, 5))
        out = encoder(grids)
        assert out.shape == (3, config.d_model)

    def test_single_worker(self, config, rng):
        encoder = WorkerEncoder(config, 4, 5, rng)
        out = encoder(rng.random((1, 4, 5)))
        assert out.shape == (1, config.d_model)

    def test_gradients_flow(self, config, rng):
        encoder = WorkerEncoder(config, 4, 4, rng)
        out = encoder(rng.random((2, 4, 4)))
        nn.ops.sum(out).backward()
        assert all(p.grad is not None for p in encoder.parameters())


class TestSensingTaskEncoder:
    def test_output_shape(self, config, rng):
        encoder = SensingTaskEncoder(config, rng)
        out = encoder(rng.random((7, 4)))
        assert out.shape == (7, config.d_model)

    def test_permutation_equivariant(self, config, rng):
        encoder = SensingTaskEncoder(config, rng)
        feats = rng.random((5, 4))
        perm = rng.permutation(5)
        np.testing.assert_allclose(
            encoder(feats).data[perm], encoder(feats[perm]).data, atol=1e-9)


class TestWorkerSelection:
    def test_log_probs_normalised(self, config, rng):
        module = WorkerSelection(config, rng)
        states = nn.Tensor(rng.normal(size=(4, 2 * config.d_model)))
        mask = np.array([False, False, True, False])
        logp, h_g = module(states, 0.5, mask)
        probs = np.exp(logp.data)
        assert probs.sum() == pytest.approx(1.0)
        assert probs[2] == pytest.approx(0.0, abs=1e-9)
        assert h_g.shape == (2 * config.d_model,)

    def test_all_but_one_masked(self, config, rng):
        module = WorkerSelection(config, rng)
        states = nn.Tensor(rng.normal(size=(3, 2 * config.d_model)))
        mask = np.array([True, False, True])
        logp, _ = module(states, 1.0, mask)
        assert np.exp(logp.data)[1] == pytest.approx(1.0)

    def test_budget_affects_distribution(self, config, rng):
        module = WorkerSelection(config, rng)
        states = nn.Tensor(rng.normal(size=(3, 2 * config.d_model)))
        mask = np.zeros(3, dtype=bool)
        low, _ = module(states, 0.01, mask)
        high, _ = module(states, 1.0, mask)
        assert not np.allclose(low.data, high.data)


class TestTaskSelection:
    def _run(self, config, rng, use_soft_mask=True, n_candidates=5,
             assigned=2):
        cfg = TASNetConfig(d_model=config.d_model, num_heads=config.num_heads,
                           num_layers=config.num_layers,
                           conv_channels=config.conv_channels,
                           use_soft_mask=use_soft_mask)
        module = TaskSelection(cfg, rng)
        d = cfg.d_model
        worker_emb = nn.Tensor(rng.normal(size=d))
        assigned_emb = (nn.Tensor(rng.normal(size=(assigned, d)))
                        if assigned else None)
        h_g = nn.Tensor(rng.normal(size=2 * d))
        task_mean = nn.Tensor(rng.normal(size=d))
        cand = nn.Tensor(rng.normal(size=(n_candidates, d)))
        delta_phi = rng.random(n_candidates)
        delta_in = rng.random(n_candidates) + 0.5
        return module(worker_emb, assigned_emb, 0.7, h_g, task_mean,
                      module.precompute_keys(cand), delta_phi, delta_in)

    def test_log_probs_normalised(self, config, rng):
        logp = self._run(config, rng)
        assert np.exp(logp.data).sum() == pytest.approx(1.0)

    def test_no_assigned_tasks(self, config, rng):
        logp = self._run(config, rng, assigned=0)
        assert np.all(np.isfinite(logp.data))

    def test_single_candidate(self, config, rng):
        logp = self._run(config, rng, n_candidates=1)
        assert np.exp(logp.data)[0] == pytest.approx(1.0)

    def test_soft_mask_changes_distribution(self, config):
        rng_a = np.random.default_rng(3)
        with_mask = self._run(config, rng_a)
        rng_b = np.random.default_rng(3)
        without = self._run(config, rng_b, use_soft_mask=False)
        assert not np.allclose(with_mask.data, without.data)

    def test_fusion_disabled_still_normalised(self, config, rng):
        cfg = TASNetConfig(d_model=config.d_model, num_heads=config.num_heads,
                           num_layers=config.num_layers,
                           conv_channels=config.conv_channels,
                           use_heuristic_fusion=False)
        module = TaskSelection(cfg, rng)
        d = cfg.d_model
        logp = module(nn.Tensor(rng.normal(size=d)), None, 0.5,
                      nn.Tensor(rng.normal(size=2 * d)),
                      nn.Tensor(rng.normal(size=d)),
                      module.precompute_keys(
                          nn.Tensor(rng.normal(size=(4, d)))),
                      rng.random(4), rng.random(4) + 0.5)
        assert np.exp(logp.data).sum() == pytest.approx(1.0)

    def test_fusion_changes_key_width(self, config, rng):
        with_fusion = TaskSelection(config, np.random.default_rng(0))
        no_fusion = TaskSelection(
            TASNetConfig(d_model=config.d_model, num_heads=config.num_heads,
                         num_layers=config.num_layers,
                         conv_channels=config.conv_channels,
                         use_heuristic_fusion=False),
            np.random.default_rng(0))
        assert (with_fusion.pointer.w_k.in_features
                == no_fusion.pointer.w_k.in_features + 2)


class TestTASNet:
    def test_parameters_collected(self, config, rng):
        net = TASNet(config, 4, 4, rng=rng)
        assert net.num_parameters() > 0
        names = [n for n, _ in net.named_parameters()]
        assert any("worker_encoder" in n for n in names)
        assert any("task_selection" in n for n in names)

    def test_forward_not_supported(self, config, rng):
        net = TASNet(config, 4, 4, rng=rng)
        with pytest.raises(NotImplementedError):
            net()

    def test_state_dict_roundtrip(self, config, rng):
        net = TASNet(config, 4, 4, rng=rng)
        clone = TASNet(config, 4, 4, rng=np.random.default_rng(99))
        clone.load_state_dict(net.state_dict())
        for (_, a), (_, b) in zip(net.named_parameters(),
                                  clone.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)
