"""Batched decode engine vs. the serial reference paths.

The contract of PR 2: advancing K rollouts in lock-step — one batched
two-stage TASNet forward per decoding step — must reproduce the serial
per-episode loop exactly, action for action, for greedy decoding, for
seeded sampling, through the solver facade, and composed with the fork
pool.  Policies without ``act_batch`` must ride the same runner via the
per-state fallback.
"""

import numpy as np
import pytest

from repro import nn
from repro.parallel import fork_available
from repro.smore import (
    BatchedEpisodeRunner,
    FlatSelectionNet,
    FlatSelectionPolicy,
    RatioSelectionRule,
    SelectionEnv,
    SMORESolver,
    TASNetTrainer,
    TrainingConfig,
    run_episode,
)

from .conftest import GRID_NX, GRID_NY


def _actions(records):
    return [(r.worker_id, r.task_id) for r in records]


# --------------------------------------------------------------------- #
# act_batch vs. act
# --------------------------------------------------------------------- #
def test_act_batch_matches_act_on_diverged_states(small_instance, planner,
                                                  policy):
    """Batch companions at different states each get their serial action."""
    env = SelectionEnv(small_instance, planner)
    state_a = env.reset()
    state_b = env.reset()
    policy.begin_episode(small_instance)
    with nn.no_grad():
        # Diverge state_b by one policy step so the batch mixes depths.
        first = policy.act(state_b, greedy=True)
        env.step_state(state_b, first.worker_id, first.task_id)

        serial = [policy.act(state_a, greedy=True),
                  policy.act(state_b, greedy=True)]
        batched = policy.act_batch([state_a, state_b], greedy=True)
    assert _actions(batched) == _actions(serial)
    for ref, got in zip(serial, batched):
        np.testing.assert_allclose(got.log_prob.data, ref.log_prob.data,
                                   atol=1e-12, rtol=1e-12)


def test_act_batch_seeded_sampling_matches_serial(small_instance, planner,
                                                  policy):
    env = SelectionEnv(small_instance, planner)
    state = env.reset()
    policy.begin_episode(small_instance)
    with nn.no_grad():
        serial = policy.act(state, greedy=False,
                            rng=np.random.default_rng(7))
        batched = policy.act_batch(
            [state, state], greedy=False,
            rngs=[np.random.default_rng(7), np.random.default_rng(7)])
    assert _actions(batched) == [_actions([serial])[0]] * 2


# --------------------------------------------------------------------- #
# Runner vs. run_episode
# --------------------------------------------------------------------- #
def test_runner_greedy_matches_run_episode(small_instance, planner, policy):
    env = SelectionEnv(small_instance, planner)
    with nn.no_grad():
        ref_state, ref_reward, ref_records = run_episode(
            env, policy, greedy=True, record_actions=True)

    env2 = SelectionEnv(small_instance, planner)
    runner = BatchedEpisodeRunner(env2, policy)
    with nn.no_grad():
        episodes = runner.run([(True, None)] * 3, record_actions=True)

    for episode in episodes:
        assert _actions(episode.records) == _actions(ref_records)
        assert episode.state.phi() == ref_state.phi()
        assert episode.total_reward == ref_reward
        assert episode.state.assignments.routes() == \
            ref_state.assignments.routes()


def test_runner_seeded_sampling_matches_run_episode(small_instance, planner,
                                                    policy):
    seeds = [11, 12, 13]
    serial = []
    env = SelectionEnv(small_instance, planner)
    with nn.no_grad():
        for seed in seeds:
            state, _, records = run_episode(
                env, policy, greedy=False, rng=np.random.default_rng(seed),
                record_actions=True)
            serial.append((state.phi(), _actions(records)))

    env2 = SelectionEnv(small_instance, planner)
    runner = BatchedEpisodeRunner(env2, policy)
    with nn.no_grad():
        episodes = runner.run([(False, seed) for seed in seeds],
                              record_actions=True)
    batched = [(ep.state.phi(), _actions(ep.records)) for ep in episodes]
    assert batched == serial


def test_runner_fallback_policy_without_act_batch(small_instance, planner):
    """Selection rules have no act_batch; the runner falls back to act."""
    rule = RatioSelectionRule()
    env = SelectionEnv(small_instance, planner)
    ref_state, ref_reward, ref_records = run_episode(
        env, rule, greedy=True, record_actions=True)

    env2 = SelectionEnv(small_instance, planner)
    episodes = BatchedEpisodeRunner(env2, rule).run(
        [(True, None)] * 2, record_actions=True)
    for episode in episodes:
        assert _actions(episode.records) == _actions(ref_records)
        assert episode.state.phi() == ref_state.phi()


def test_runner_flat_policy_fallback(small_instance, planner):
    from repro.smore import TASNetConfig

    net = FlatSelectionNet(
        TASNetConfig(d_model=8, num_heads=2, num_layers=1, conv_channels=2),
        GRID_NX, GRID_NY, rng=np.random.default_rng(3))
    flat = FlatSelectionPolicy(net)
    env = SelectionEnv(small_instance, planner)
    with nn.no_grad():
        ref_state, _, ref_records = run_episode(
            env, flat, greedy=True, record_actions=True)

    env2 = SelectionEnv(small_instance, planner)
    with nn.no_grad():
        episodes = BatchedEpisodeRunner(env2, flat).run(
            [(True, None)], record_actions=True)
    assert _actions(episodes[0].records) == _actions(ref_records)
    assert episodes[0].state.phi() == ref_state.phi()


# --------------------------------------------------------------------- #
# Solver routing
# --------------------------------------------------------------------- #
def test_solver_batched_matches_loop_path(small_instance, planner, policy):
    solver = SMORESolver(planner, policy)
    loop = solver.solve(small_instance, num_samples=4,
                        rng=np.random.default_rng(5), batch_rollouts=False)
    batched = solver.solve(small_instance, num_samples=4,
                           rng=np.random.default_rng(5))
    assert batched.objective == loop.objective
    assert batched.routes == loop.routes
    assert batched.incentives == loop.incentives
    assert batched.perf.planner_calls == loop.perf.planner_calls
    assert batched.perf.init_planner_calls == loop.perf.init_planner_calls
    assert batched.perf.rollouts == loop.perf.rollouts == 4


@pytest.mark.skipif(not fork_available(),
                    reason="fork start method unavailable")
def test_solver_batched_with_workers_matches_serial(small_instance, planner,
                                                    policy):
    solver = SMORESolver(planner, policy)
    serial = solver.solve(small_instance, num_samples=4,
                          rng=np.random.default_rng(6), batch_rollouts=False)
    pooled = solver.solve(small_instance, num_samples=4,
                          rng=np.random.default_rng(6), workers=2)
    assert pooled.objective == serial.objective
    assert pooled.routes == serial.routes
    assert pooled.perf.planner_calls == serial.perf.planner_calls
    assert pooled.perf.rollouts == 4


# --------------------------------------------------------------------- #
# Trainer integration
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("baseline", ["critic", "rollout", "none"])
def test_trainer_multi_rollout_iteration(small_instance, planner, policy,
                                         baseline):
    config = TrainingConfig(iterations=1, batch_size=1, seed=3,
                            baseline=baseline, rollouts_per_instance=3)
    trainer = TASNetTrainer(policy, planner, config=config)
    reward = trainer.train_iteration([small_instance])
    assert np.isfinite(reward) and reward > 0.0
    assert len(trainer.history["reward"]) == 1
    if baseline == "critic":
        assert len(trainer.history["critic_loss"]) == 1
    # One gradient step actually happened.
    assert trainer.optimizer.state_dict()["step_count"] == 1


def test_training_config_rejects_zero_rollouts():
    with pytest.raises(ValueError):
        TrainingConfig(rollouts_per_instance=0)
