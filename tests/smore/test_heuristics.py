"""Tests for the coverage-incentive ratio and the soft mask (Eqs. 9-10)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.smore import coverage_incentive_ratio, soft_mask


class TestCoverageIncentiveRatio:
    def test_basic_ratio(self):
        ratio = coverage_incentive_ratio(np.array([2.0]), np.array([4.0]))
        assert ratio[0] == pytest.approx(0.5)

    def test_zero_cost_guarded(self):
        ratio = coverage_incentive_ratio(np.array([1.0]), np.array([0.0]))
        assert np.isfinite(ratio[0])
        assert ratio[0] > 1e5  # very attractive but finite

    def test_vectorised(self):
        ratios = coverage_incentive_ratio(np.array([1.0, 2.0]),
                                          np.array([1.0, 1.0]))
        np.testing.assert_allclose(ratios, [1.0, 2.0])


class TestSoftMask:
    def test_range(self):
        phi = np.array([0.1, 0.5, 0.9])
        cost = np.array([1.0, 1.0, 1.0])
        mask = soft_mask(phi, cost, lam=0.5)
        # The worst normalised ratio underflows exp to exactly 0 — that is
        # fine: a zero *logit multiplier* is soft (prob stays nonzero).
        assert np.all(mask >= 0.0)
        assert np.all(mask <= 1.0)

    def test_best_ratio_gets_highest_mask(self):
        phi = np.array([0.1, 0.9, 0.5])
        cost = np.array([1.0, 1.0, 1.0])
        mask = soft_mask(phi, cost, lam=0.5)
        assert np.argmax(mask) == 1
        assert np.argmin(mask) == 0

    def test_single_candidate_is_one(self):
        mask = soft_mask(np.array([0.3]), np.array([2.0]))
        np.testing.assert_allclose(mask, [1.0])

    def test_equal_ratios_all_ones(self):
        mask = soft_mask(np.array([0.5, 0.5]), np.array([1.0, 1.0]))
        np.testing.assert_allclose(mask, [1.0, 1.0])

    def test_normalised_best_near_exp_formula(self):
        # For beta_hat = 1: f = exp(-lam^2 / (eps + 1)).
        phi = np.array([0.0, 1.0])
        cost = np.array([1.0, 1.0])
        lam = 0.5
        mask = soft_mask(phi, cost, lam=lam)
        assert mask[1] == pytest.approx(np.exp(-lam ** 2 / (1e-6 + 1.0)), rel=1e-3)

    def test_worst_near_zero(self):
        phi = np.array([0.0, 1.0])
        cost = np.array([1.0, 1.0])
        mask = soft_mask(phi, cost, lam=0.5)
        assert mask[0] < 1e-6

    def test_lambda_zero_disables_discrimination(self):
        phi = np.array([0.1, 0.9])
        cost = np.array([1.0, 1.0])
        np.testing.assert_allclose(soft_mask(phi, cost, lam=0.0), [1.0, 1.0])

    def test_larger_lambda_sharper(self):
        phi = np.array([0.2, 0.5, 0.8])
        cost = np.ones(3)
        soft = soft_mask(phi, cost, lam=0.3)
        sharp = soft_mask(phi, cost, lam=1.0)
        # Larger lambda suppresses mid-ratio candidates more.
        assert sharp[1] < soft[1]

    @given(st.lists(st.tuples(st.floats(0.0, 2.0), st.floats(0.01, 10.0)),
                    min_size=1, max_size=16))
    def test_property_valid_output(self, pairs):
        phi = np.array([p for p, _ in pairs])
        cost = np.array([c for _, c in pairs])
        mask = soft_mask(phi, cost, lam=0.5)
        assert mask.shape == phi.shape
        assert np.all(np.isfinite(mask))
        assert np.all(mask >= 0.0)
        assert np.all(mask <= 1.0)

    def test_monotone_in_ratio(self):
        phi = np.array([0.1, 0.3, 0.6, 0.9])
        cost = np.ones(4)
        mask = soft_mask(phi, cost, lam=0.5)
        assert np.all(np.diff(mask) >= 0.0)
