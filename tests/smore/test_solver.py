"""Tests for the SMORE solver facade and the selection rules."""

import numpy as np
import pytest

from repro.core import IncentiveModel
from repro.smore import (
    GreedySelectionRule,
    RatioSelectionRule,
    SelectionEnv,
    SMORESolver,
    run_episode,
)


class TestSMORESolver:
    def test_solution_is_valid(self, policy, small_instance, planner):
        solver = SMORESolver(planner, policy)
        solution = solver.solve(small_instance)
        assert solution.validate() == []

    def test_budget_respected(self, policy, small_instance, planner):
        solution = SMORESolver(planner, policy).solve(small_instance)
        assert solution.total_incentive <= small_instance.budget + 1e-6

    def test_solver_name_default(self, policy, planner):
        assert SMORESolver(planner, policy).name == "SMORE"

    def test_solver_name_for_rules(self, planner):
        assert SMORESolver(planner, GreedySelectionRule()).name == "SMORE w/o RL-AS"
        assert SMORESolver(planner, RatioSelectionRule(), name="x").name == "x"

    def test_wall_time_recorded(self, policy, small_instance, planner):
        solution = SMORESolver(planner, policy).solve(small_instance)
        assert solution.wall_time > 0

    def test_incentives_match_definition(self, policy, small_instance, planner):
        solution = SMORESolver(planner, policy).solve(small_instance)
        model = IncentiveModel(mu=small_instance.mu,
                               base_rtt_fn=lambda w:
                               planner.base_route(w).route_travel_time)
        assert solution.validate(model) == []

    def test_objective_positive_when_tasks_assigned(self, policy,
                                                    small_instance, planner):
        solution = SMORESolver(planner, policy).solve(small_instance)
        if solution.num_completed >= 2:
            assert solution.objective > 0

    def test_sampling_mode(self, policy, small_instance, planner):
        solver = SMORESolver(planner, policy)
        solution = solver.solve(small_instance, greedy=False,
                                rng=np.random.default_rng(0))
        assert solution.validate() == []

    def test_multi_sample_never_worse_than_greedy(self, policy,
                                                  small_instance, planner):
        solver = SMORESolver(planner, policy)
        greedy = solver.solve(small_instance)
        sampled = solver.solve(small_instance, num_samples=4,
                               rng=np.random.default_rng(0))
        # The greedy rollout is always included in the candidate pool.
        assert sampled.objective >= greedy.objective - 1e-9
        assert sampled.validate() == []


class TestSelectionRules:
    def test_greedy_rule_picks_max_gain(self, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        rule = GreedySelectionRule()
        rule.begin_episode(small_instance)
        action = rule.act(state)
        chosen_gain = state.coverage.gain(
            small_instance.sensing_task(action.task_id))
        for worker_id in state.candidates.workers_with_candidates():
            for task_id in state.candidates.worker_candidates(worker_id):
                gain = state.coverage.gain(small_instance.sensing_task(task_id))
                assert chosen_gain >= gain - 1e-12

    def test_ratio_rule_picks_max_ratio(self, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        state = env.reset()
        rule = RatioSelectionRule()
        rule.begin_episode(small_instance)
        action = rule.act(state)
        entry = state.candidates.get(action.worker_id, action.task_id)
        chosen = (state.coverage.gain(
            small_instance.sensing_task(action.task_id))
            / max(entry.delta_incentive, 1e-6))
        for worker_id in state.candidates.workers_with_candidates():
            for task_id, e in state.candidates.worker_candidates(worker_id).items():
                ratio = (state.coverage.gain(
                    small_instance.sensing_task(task_id))
                    / max(e.delta_incentive, 1e-6))
                assert chosen >= ratio - 1e-9

    def test_rules_produce_valid_solutions(self, small_instance, planner):
        for rule in (GreedySelectionRule(), RatioSelectionRule()):
            solution = SMORESolver(planner, rule).solve(small_instance)
            assert solution.validate() == []


class TestRunEpisode:
    def test_returns_total_reward(self, policy, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        state, total, records = run_episode(env, policy, record_actions=True)
        assert state.done
        assert total == pytest.approx(state.phi())
        assert len(records) == state.step_count

    def test_no_recording_by_default(self, policy, small_instance, planner):
        env = SelectionEnv(small_instance, planner)
        _, _, records = run_episode(env, policy)
        assert records == []
