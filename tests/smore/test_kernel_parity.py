"""End-to-end kernel parity for the full SMORE solve.

``InsertionSolver(use_kernels=True)`` must produce *bit-identical*
solutions to the object path — same routes, same incentive floats, same
objective, and the same integer perf counters — under greedy and seeded
sampling selection, serially and through the workers=4 fork pool.
"""

import numpy as np
import pytest

from repro.datasets.instances import InstanceOptions, generate_instances
from repro.smore import GreedySelectionRule, SMORESolver
from repro.tsptw import InsertionSolver

_COUNTER_FIELDS = ("planner_calls", "init_planner_calls", "backend_calls",
                   "cache_hits", "cache_misses", "rollouts")


def _route_ids(solution):
    return {wid: [t.task_id for t in route.tasks]
            for wid, route in solution.routes.items()}


def _assert_bit_identical(kernel_sol, object_sol):
    assert _route_ids(kernel_sol) == _route_ids(object_sol)
    # Dict equality on raw floats: incentives must match to the last bit.
    assert kernel_sol.incentives == object_sol.incentives
    assert kernel_sol.objective == object_sol.objective
    for field in _COUNTER_FIELDS:
        assert getattr(kernel_sol.perf, field) == \
            getattr(object_sol.perf, field), field


def _solve(instance, policy, use_kernels, **kwargs):
    planner = InsertionSolver(speed=instance.speed, use_kernels=use_kernels)
    return SMORESolver(planner, policy).solve(instance, **kwargs)


def test_greedy_parity_small(small_instance):
    kernel_sol = _solve(small_instance, GreedySelectionRule(), True,
                        greedy=True)
    object_sol = _solve(small_instance, GreedySelectionRule(), False,
                        greedy=True)
    assert kernel_sol.num_completed > 0
    _assert_bit_identical(kernel_sol, object_sol)


def test_greedy_parity_generated_instance():
    instance = generate_instances(
        "delivery", 1, seed=5,
        options=InstanceOptions(task_density=0.06))[0]
    kernel_sol = _solve(instance, GreedySelectionRule(), True, greedy=True)
    object_sol = _solve(instance, GreedySelectionRule(), False, greedy=True)
    assert kernel_sol.num_completed > 0
    _assert_bit_identical(kernel_sol, object_sol)


@pytest.mark.parametrize("workers", [1, 4])
def test_sampled_parity_serial_and_pool(small_instance, policy, workers):
    solutions = []
    for use_kernels in (True, False):
        solutions.append(_solve(
            small_instance, policy, use_kernels, greedy=False,
            rng=np.random.default_rng(11), num_samples=4, workers=workers))
    kernel_sol, object_sol = solutions
    assert kernel_sol.perf.rollouts == 4
    _assert_bit_identical(kernel_sol, object_sol)
