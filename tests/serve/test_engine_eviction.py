"""Coupled eviction of the env LRU and the episode-statics cache.

Both caches key by ``id(instance)`` and pin the instance reference.  If
the env LRU dropped its entry alone, the statics cache could hold the
only pin — or, once it churned the entry independently, the id could be
recycled by a new instance while the other side still mapped the stale
key.  The engine therefore evicts the statics entry in the same breath,
keeping one invariant: statics are cached only for instances whose env
is resident.
"""

import numpy as np
import pytest

from repro.datasets.instances import InstanceOptions, generate_instances
from repro.serve import WarmEngine
from repro.smore import SMORESolver, TASNet, TASNetConfig, TASNetPolicy
from repro.tsptw import InsertionSolver

CONFIG = TASNetConfig(d_model=16, num_heads=2, num_layers=1, conv_channels=4)


@pytest.fixture(scope="module")
def instances():
    opts = InstanceOptions(task_density=0.03, budget=120.0)
    return generate_instances("delivery", 4, seed=3, options=opts)


def _engine(instances, max_warm_instances):
    grid = instances[0].coverage.grid
    net = TASNet(CONFIG, grid_nx=grid.nx, grid_ny=grid.ny,
                 rng=np.random.default_rng(0))
    solver = SMORESolver(InsertionSolver(), TASNetPolicy(net))
    return WarmEngine(solver, max_warm_instances=max_warm_instances)


def _solve(engine, instance):
    batch = engine.open_batch()
    batch.admit(instance)
    return engine.execute(batch)


def _resident_ids(engine):
    return set(engine._envs)


def _statics_ids(engine):
    return set(engine.statics_cache._entries)


class TestCoupledEviction:
    def test_env_eviction_drops_statics_entry(self, instances):
        engine = _engine(instances, max_warm_instances=1)
        _solve(engine, instances[0])
        assert instances[0] in engine.statics_cache
        _solve(engine, instances[1])          # evicts instances[0]'s env
        assert engine.env_evictions == 1
        assert instances[0] not in engine.statics_cache
        assert instances[1] in engine.statics_cache

    def test_statics_resident_only_with_env(self, instances):
        """The invariant itself: statics keys are always a subset of the
        resident-env keys, through arbitrary churn."""
        engine = _engine(instances, max_warm_instances=2)
        for instance in list(instances) + list(instances[::-1]):
            _solve(engine, instance)
            assert _statics_ids(engine) <= _resident_ids(engine)

    def test_id_reuse_cannot_alias_statics(self, instances):
        """Churn with max_warm_instances=1 while recycling instance
        objects: a freshly generated instance may reuse a dead object's
        id; the coupled eviction guarantees the statics cache never holds
        an entry under a key the env LRU no longer tracks, so the reused
        id can only ever map the new instance's statics."""
        engine = _engine(instances, max_warm_instances=1)
        opts = InstanceOptions(task_density=0.03, budget=120.0)
        for seed in range(6):
            # Fresh instance each round; the previous one loses its last
            # strong reference when `churn` rebinds, making its id
            # available for reuse by the very next allocation.
            churn = generate_instances("delivery", 1, seed=10 + seed,
                                       options=opts)[0]
            _solve(engine, churn)
            assert _statics_ids(engine) == _resident_ids(engine) == {id(churn)}
        assert engine.env_evictions == 5
        # Each coupled eviction also dropped the statics entry.
        assert engine.statics_cache.evictions >= 5

    def test_evict_reports_presence(self, instances):
        engine = _engine(instances, max_warm_instances=2)
        _solve(engine, instances[0])
        assert engine.statics_cache.evict(instances[0]) is True
        assert engine.statics_cache.evict(instances[0]) is False
        assert engine.statics_cache.evict(id(instances[1])) is False
