"""WarmEngine: resident backend, env LRU, candidate-snapshot reuse."""

import numpy as np
import pytest

from repro.datasets.instances import InstanceOptions, generate_instances
from repro.nn import backend as nn_backend
from repro.serve import WarmEngine
from repro.smore import SMORESolver, TASNet, TASNetConfig, TASNetPolicy
from repro.tsptw import CachedPlanner, InsertionSolver

CONFIG = TASNetConfig(d_model=16, num_heads=2, num_layers=1, conv_channels=4)


@pytest.fixture(scope="module")
def instances():
    opts = InstanceOptions(task_density=0.03, budget=120.0)
    return generate_instances("delivery", 4, seed=3, options=opts)


def _solver(instances, planner=None):
    grid = instances[0].coverage.grid
    net = TASNet(CONFIG, grid_nx=grid.nx, grid_ny=grid.ny,
                 rng=np.random.default_rng(0))
    # Note: `planner or ...` would drop an *empty* CachedPlanner (len 0).
    if planner is None:
        planner = InsertionSolver()
    return SMORESolver(planner, TASNetPolicy(net))


def _routes(solution):
    return sorted((wid, tuple(t.task_id for t in route.tasks))
                  for wid, route in solution.routes.items())


class TestEnvResidency:
    def test_env_is_reused_per_instance(self, instances):
        engine = WarmEngine(_solver(instances))
        env_a = engine.env_for(instances[0])
        env_b = engine.env_for(instances[1])
        assert env_a is not env_b
        assert engine.env_for(instances[0]) is env_a
        assert engine.stats()["env_hits"] == 1
        assert engine.stats()["env_misses"] == 2

    def test_lru_evicts_least_recently_used(self, instances):
        engine = WarmEngine(_solver(instances), max_warm_instances=2)
        first = engine.env_for(instances[0])
        engine.env_for(instances[1])
        engine.env_for(instances[0])          # refresh: [1] is now LRU
        engine.env_for(instances[2])          # evicts instances[1]
        assert engine.warm_instances == 2
        assert engine.env_evictions == 1
        assert engine.env_for(instances[0]) is first      # survived
        assert engine.env_for(instances[1]) is not None   # rebuilt (miss)
        assert engine.env_misses == 4

    def test_bad_capacity_raises(self, instances):
        with pytest.raises(ValueError, match="max_warm_instances"):
            WarmEngine(_solver(instances), max_warm_instances=0)

    def test_warm_env_skips_init_sweep_on_repeat(self, instances):
        """Second batch on the same instance restores the candidate
        snapshot instead of re-running the O(W x S) init sweep."""
        engine = WarmEngine(_solver(instances))
        batch = engine.open_batch()
        batch.admit(instances[0])
        (first,) = engine.execute(batch)
        assert first.perf.init_planner_calls > 0

        batch = engine.open_batch()
        batch.admit(instances[0])
        (second,) = engine.execute(batch)
        assert second.perf.init_planner_calls == 0
        assert _routes(first) == _routes(second)

    def test_memoising_planner_stays_warm_across_instances(self, instances):
        """A CachedPlanner on the engine keeps its memo across batches:
        re-solving an evicted instance still hits the planner cache."""
        planner = CachedPlanner(InsertionSolver())
        engine = WarmEngine(_solver(instances, planner), max_warm_instances=1)
        batch = engine.open_batch()
        batch.admit(instances[0])
        engine.execute(batch)
        batch = engine.open_batch()
        batch.admit(instances[1])             # evicts instances[0]'s env
        engine.execute(batch)
        hits_before = planner.stats().cache_hits
        batch = engine.open_batch()
        batch.admit(instances[0])             # fresh env, warm planner
        engine.execute(batch)
        assert planner.stats().cache_hits > hits_before


class TestResidentBackend:
    def test_backend_resolved_at_construction(self, instances):
        engine = WarmEngine(_solver(instances))
        assert engine.backend is nn_backend.get_backend()
        assert engine.stats()["backend"] == engine.backend.name

    def test_execute_uses_engine_backend_despite_global_flip(self, instances):
        """The engine keeps decoding through the backend it warmed up
        with even if the process-global default changes under it."""
        engine = WarmEngine(_solver(instances))
        direct = engine.solver.solve(instances[0])
        resident = engine.backend.name
        other = next(name for name in nn_backend.available_backends()
                     if name != resident)
        previous = nn_backend.get_backend()
        nn_backend.set_backend(other)
        try:
            batch = engine.open_batch()
            batch.admit(instances[0])
            (solution,) = engine.execute(batch)
            # The global flip survives the batch; the answer matches the
            # resident-backend decode bit-for-bit.
            assert nn_backend.backend_name() == other
            assert _routes(solution) == _routes(direct)
            assert solution.incentives == direct.incentives
        finally:
            nn_backend.set_backend(previous.name)
