"""Service observability: per-request traces, SLO wiring, recorder
shutdown semantics.

These pin the PR-9 operational contract on top of the serving layer:
every admitted request gets exactly one terminal trace with stage
attribution that adds up, ``stop()`` mid-batch settles pending work
exactly once (and the journal footer still lands), and a journal
recorded through the live asyncio path replays bit-identically.
"""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.datasets.instances import InstanceOptions, generate_instances
from repro.obs import METRICS_SCHEMA_VERSION, ListSink
from repro.obs.recorder import FlightRecorder, read_journal, replay_journal
from repro.obs.slo import SloConfig, SloTracker
from repro.serve import (
    DeadlineExceeded,
    RequestTrace,
    ServeConfig,
    SolverService,
    WarmEngine,
)
from repro.smore import SMORESolver, TASNet, TASNetConfig, TASNetPolicy
from repro.tsptw import InsertionSolver

CONFIG = TASNetConfig(d_model=16, num_heads=2, num_layers=1, conv_channels=4)


@pytest.fixture(scope="module")
def instances():
    opts = [InstanceOptions(task_density=0.02, budget=100.0, num_workers=2),
            InstanceOptions(task_density=0.04, budget=120.0)]
    return [generate_instances("delivery", 1, seed=40 + i, options=opt)[0]
            for i, opt in enumerate(opts)]


def _solver(instances):
    grid = instances[0].coverage.grid
    net = TASNet(CONFIG, grid_nx=grid.nx, grid_ny=grid.ny,
                 rng=np.random.default_rng(0))
    return SMORESolver(InsertionSolver(), TASNetPolicy(net))


def _engine(instances):
    return WarmEngine(_solver(instances))


class _BlockingEngine(WarmEngine):
    """Engine whose execute() blocks until released."""

    def __init__(self, solver):
        super().__init__(solver)
        self.entered = threading.Event()
        self.release = threading.Event()

    def execute(self, batch):
        self.entered.set()
        assert self.release.wait(timeout=30.0)
        return super().execute(batch)


class TestRequestTraces:
    def test_trace_attribution_fields(self, instances):
        async def run():
            async with SolverService(_engine(instances)) as service:
                return await service.solve(instances[0], return_trace=True)

        solution, trace = asyncio.run(run())
        assert solution.routes is not None
        assert isinstance(trace, RequestTrace)
        assert trace.outcome == "ok"
        assert trace.dedup == "primary"   # greedy 1-sample owns a slot
        assert trace.batch_requests == 1
        assert trace.admission_wait_ms >= 0.0
        assert trace.coalesce_wait_ms >= 0.0
        assert trace.execute_ms > 0.0
        assert trace.latency_ms >= trace.execute_ms
        assert trace.encode_ms >= 0.0 and trace.decode_ms >= 0.0
        assert trace.planner_calls > 0
        assert trace.env_cache in ("hit", "miss")
        payload = trace.to_dict()
        assert payload["request_id"] == trace.request_id
        assert payload["outcome"] == "ok"

    def test_duplicate_requests_marked_in_traces(self, instances):
        """Identical coalesced greedy requests: one primary, rest
        duplicates sharing the decode."""
        engine = _BlockingEngine(_solver(instances))
        config = ServeConfig(max_batch_size=4, max_wait_us=50_000.0)

        async def run():
            loop = asyncio.get_running_loop()
            async with SolverService(engine, config) as service:
                warm = asyncio.ensure_future(service.solve(instances[1]))
                await loop.run_in_executor(
                    None, engine.entered.wait)    # dispatcher busy
                engine.entered.clear()
                futures = [asyncio.ensure_future(
                               service.solve(instances[0],
                                             return_trace=True))
                           for _ in range(3)]
                await asyncio.sleep(0.05)         # all three queue together
                engine.release.set()
                await warm
                return await asyncio.gather(*futures)

        results = asyncio.run(run())
        dedups = sorted(trace.dedup for _, trace in results)
        assert dedups == ["duplicate", "duplicate", "primary"]
        primary = next(t for _, t in results if t.dedup == "primary")
        assert primary.batch_requests == 3
        assert primary.batch_decoded == 1

    def test_traces_ring_buffer_and_stats_stages(self, instances):
        config = ServeConfig(trace_history=4)

        async def run():
            async with SolverService(_engine(instances), config) as service:
                for _ in range(6):
                    await service.solve(instances[0])
                return service.stats(), list(service.recent_traces)

        stats, traces = asyncio.run(run())
        assert len(traces) == 4                  # ring buffer clipped
        assert all(t.outcome == "ok" for t in traces)
        stages = stats["stages"]
        assert stages["traces_retained"] == 4
        assert stages["admission_wait_ms"]["count"] == 6
        assert stages["execute_ms"]["count"] >= 1
        assert "queue_depth" in stats

    def test_traces_disabled(self, instances):
        config = ServeConfig(request_traces=False)

        async def run():
            async with SolverService(_engine(instances), config) as service:
                result = await service.solve(instances[0], return_trace=True)
                return result, service.stats()

        (solution, trace), stats = asyncio.run(run())
        assert solution.routes is not None
        assert trace is None
        assert "stages" not in stats

    def test_terminal_trace_emitted_to_tracer(self, instances):
        sink = ListSink()
        with obs.tracing(sink=sink):
            async def run():
                async with SolverService(_engine(instances)) as service:
                    await service.solve(instances[0])
            asyncio.run(run())
        events = [r for r in sink.records
                  if r.get("name") == "serve.request"]
        assert len(events) == 1
        assert events[0]["outcome"] == "ok"
        assert events[0]["dedup"] == "primary"


class TestSloWiring:
    def test_service_feeds_tracker_and_stats(self, instances):
        tracker = SloTracker(SloConfig(window_s=1e9, min_requests=10**6))

        async def run():
            async with SolverService(_engine(instances),
                                     slo=tracker) as service:
                for _ in range(3):
                    await service.solve(instances[0])
                with pytest.raises(DeadlineExceeded):
                    await service.solve(instances[1], timeout=1e-9)
                return service.stats()

        stats = asyncio.run(run())
        assert tracker.totals["ok"] == 3
        assert tracker.totals["shed_deadline"] == 1
        report = stats["slo"]
        assert report["requests"] == 4
        assert report["failures"] == {"shed_deadline": 1}
        assert report["latency_ms"]["count"] == 3


class TestRecorderThroughService:
    def test_live_journal_replays_bit_identically(self, tmp_path, instances):
        path = tmp_path / "journal.jsonl"
        recorder = FlightRecorder(path, workload={"mode": "delivery"})
        recorder.register_instances(instances)

        async def run():
            async with SolverService(_engine(instances),
                                     recorder=recorder) as service:
                for i in range(6):
                    inst = instances[i % len(instances)]
                    if i % 3 == 2:
                        await service.solve(inst, greedy=False,
                                            seed=500 + i, num_samples=2)
                    else:
                        await service.solve(inst)

        asyncio.run(run())
        journal = read_journal(path)
        assert journal.complete                  # stop() wrote the footer
        assert len(journal.requests) == 6
        assert all(o["outcome"] == "ok" and o["digest"]
                   for o in journal.outcomes.values())
        report = replay_journal(journal, _engine(instances), instances)
        assert report.ok
        assert report.replayed == report.matched == 6

    def test_stop_mid_batch_settles_once_and_closes_journal(
            self, tmp_path, instances):
        """stop() while a batch is on the engine: the in-flight request
        settles exactly once and the journal still gets its footer."""
        engine = _BlockingEngine(_solver(instances))
        path = tmp_path / "journal.jsonl"
        recorder = FlightRecorder(path)
        recorder.register_instances(instances)
        sink = ListSink()

        async def run():
            with obs.tracing(sink=sink):
                service = await SolverService(
                    engine, recorder=recorder).start()
                loop = asyncio.get_running_loop()
                future = asyncio.ensure_future(service.solve(instances[0]))
                await loop.run_in_executor(None, engine.entered.wait)
                stopper = asyncio.ensure_future(service.stop())
                await asyncio.sleep(0.01)        # stop() now draining
                engine.release.set()
                solution = await future
                await stopper
                return solution

        solution = asyncio.run(run())
        assert solution.routes is not None
        assert recorder.closed
        journal = read_journal(path)
        assert journal.complete                  # footer, not truncated
        assert [o["outcome"]
                for o in journal.outcomes.values()] == ["ok"]
        terminal = [r for r in sink.records
                    if r.get("name") == "serve.request"]
        assert len(terminal) == 1                # settled exactly once

    def test_shed_request_journaled_with_outcome(self, tmp_path, instances):
        path = tmp_path / "journal.jsonl"
        recorder = FlightRecorder(path)
        recorder.register_instances(instances)

        async def run():
            async with SolverService(_engine(instances),
                                     recorder=recorder) as service:
                with pytest.raises(DeadlineExceeded):
                    await service.solve(instances[0], timeout=1e-9)

        asyncio.run(run())
        journal = read_journal(path)
        assert journal.outcomes[0]["outcome"] == "shed_deadline"
        assert journal.outcomes[0]["digest"] is None


class TestMetricsJsonlStamping:
    def test_schema_version_and_monotonic_ts(self, tmp_path, instances):
        path = tmp_path / "metrics.jsonl"

        async def run():
            async with SolverService(_engine(instances)) as service:
                await service.solve(instances[0])
                service.write_metrics_jsonl(path)

        asyncio.run(run())
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) == 2
        for record in records:
            assert record["schema_version"] == METRICS_SCHEMA_VERSION
            assert record["ts_monotonic"] > 0.0
        assert {r["type"] for r in records} == {"metrics", "serving_stats"}
