"""SolverService: batching parity, coalescing, shedding, admission.

The service's one hard promise: batching is invisible in the answers.  A
greedy request routed through the asyncio front-end, coalesced with
arbitrary companions, and decoded on the warm engine returns a solution
bit-identical to ``SMORESolver.solve`` on the same instance.  Around
that, the operational contract: the micro-batcher respects
``max_batch_size``/``max_wait_us``, expired deadlines shed with
:class:`DeadlineExceeded` without touching their companions, a full
queue rejects with :class:`ServiceOverloaded`, and ``stop()`` drains
admitted work before shutting down.

No pytest-asyncio here: each test owns its loop via ``asyncio.run``.
"""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.datasets.instances import InstanceOptions, generate_instances
from repro.serve import (
    DeadlineExceeded,
    ServeConfig,
    ServiceClosed,
    ServiceOverloaded,
    SolveRequest,
    SolverService,
    WarmEngine,
    drive_requests,
    run_workload,
)
from repro.smore import SMORESolver, TASNet, TASNetConfig, TASNetPolicy
from repro.tsptw import InsertionSolver

CONFIG = TASNetConfig(d_model=16, num_heads=2, num_layers=1, conv_channels=4)


@pytest.fixture(scope="module")
def instances():
    """Shape-heterogeneous pool: varying densities and worker counts."""
    opts = [InstanceOptions(task_density=0.02, budget=100.0, num_workers=2),
            InstanceOptions(task_density=0.05, budget=120.0),
            InstanceOptions(task_density=0.03, budget=150.0, num_workers=4)]
    insts = [generate_instances("delivery", 1, seed=20 + i, options=opt)[0]
             for i, opt in enumerate(opts)]
    assert len({(len(i.workers), len(i.sensing_tasks)) for i in insts}) == 3
    return insts


def _solver(instances):
    grid = instances[0].coverage.grid
    net = TASNet(CONFIG, grid_nx=grid.nx, grid_ny=grid.ny,
                 rng=np.random.default_rng(0))
    return SMORESolver(InsertionSolver(), TASNetPolicy(net))


def _engine(instances):
    return WarmEngine(_solver(instances))


def _routes(solution):
    return sorted((wid, tuple(t.task_id for t in route.tasks))
                  for wid, route in solution.routes.items())


def _identical(a, b):
    return (_routes(a) == _routes(b) and a.incentives == b.incentives
            and a.objective == b.objective)


class _BlockingEngine(WarmEngine):
    """Engine whose execute() blocks until released (admission tests)."""

    def __init__(self, solver):
        super().__init__(solver)
        self.entered = threading.Event()
        self.release = threading.Event()

    def execute(self, batch):
        self.entered.set()
        assert self.release.wait(timeout=30.0)
        return super().execute(batch)


class TestBatchingParity:
    def test_greedy_responses_bit_identical_to_direct_solve(self, instances):
        """32 concurrent greedy requests round-robin over a heterogeneous
        pool: every answer matches the direct single-instance solve, no
        matter which companions shared its decode batch."""
        direct = {id(inst): _solver(instances).solve(inst)
                  for inst in instances}
        engine = _engine(instances)
        requests = [SolveRequest(instance=instances[i % len(instances)])
                    for i in range(32)]
        result = drive_requests(
            engine, requests,
            config=ServeConfig(max_batch_size=8, max_wait_us=50_000.0))
        assert not result.errors
        for request, solution in zip(requests, result.outcomes):
            assert _identical(direct[id(request.instance)], solution)
        # The workload actually exercised multi-request batches.
        assert result.stats["batch_size"]["max"] > 1

    def test_sampled_request_matches_seeded_direct_solve(self, instances):
        """A seeded sampled request through the service equals
        ``solve(greedy=False, rng=default_rng(seed), num_samples=k)`` —
        even when batched with greedy companions."""
        want = _solver(instances).solve(
            instances[1], greedy=False, rng=np.random.default_rng(77),
            num_samples=3)
        requests = [SolveRequest(instance=instances[0]),
                    SolveRequest(instance=instances[1], greedy=False,
                                 seed=77, num_samples=3),
                    SolveRequest(instance=instances[2])]
        result = drive_requests(_engine(instances), requests,
                                config=ServeConfig(max_wait_us=50_000.0))
        assert not result.errors
        assert _identical(want, result.outcomes[1])

    def test_single_request_degenerate_service(self, instances):
        """One request, no companions: still bit-identical."""
        want = _solver(instances).solve(instances[0])
        result = drive_requests(_engine(instances),
                                [SolveRequest(instance=instances[0])])
        assert _identical(want, result.outcomes[0])
        assert result.stats["batch_size"] == \
            pytest.approx({"count": 1, "mean": 1.0, "min": 1.0, "max": 1.0,
                           "p50": 1.0, "p95": 1.0, "p99": 1.0})


class TestMicroBatcher:
    def test_max_batch_size_caps_every_batch(self, instances):
        result = drive_requests(
            _engine(instances),
            [SolveRequest(instance=instances[i % len(instances)])
             for i in range(9)],
            config=ServeConfig(max_batch_size=2, max_wait_us=50_000.0))
        assert not result.errors
        batch = result.stats["batch_size"]
        assert batch["max"] <= 2
        assert batch["count"] >= 5          # 9 requests in <=2-size batches

    def test_zero_wait_still_batches_backlog(self, instances):
        """max_wait_us=0 disables coalescing *waits*, not batching: a
        backlog that accumulated while the engine was busy still forms a
        multi-request batch."""
        engine = _BlockingEngine(_solver(instances))

        async def run():
            # dedupe off: this test pins the *request* batch width, and
            # the 4-request backlog revisits an instance.
            async with SolverService(
                    engine, ServeConfig(max_wait_us=0.0,
                                        dedupe_greedy=False)) as service:
                first = asyncio.ensure_future(
                    service.solve(instances[0]))
                # Wait until the engine is busy with the first batch...
                while not engine.entered.is_set():
                    await asyncio.sleep(0.001)
                # ...then pile up a backlog behind it.
                rest = [asyncio.ensure_future(
                            service.solve(instances[(1 + i) % len(instances)]))
                        for i in range(4)]
                await asyncio.sleep(0.01)
                engine.release.set()
                await asyncio.gather(first, *rest)
                return service.stats()

        stats = asyncio.run(run())
        assert stats["responses"] == 5
        # Batch 1 held only the first request; the backlog batch held 4.
        assert stats["batch_size"]["max"] == 4

    def test_responses_under_load_report_queue_and_batches(self, instances):
        result = drive_requests(
            _engine(instances),
            [SolveRequest(instance=instances[i % len(instances)])
             for i in range(12)],
            config=ServeConfig(max_batch_size=4, max_wait_us=50_000.0))
        stats = result.stats
        assert stats["requests"] == 12
        assert stats["responses"] == 12
        assert stats["queue_depth_peak"] >= 1
        lat = stats["latency_ms"]
        assert lat["count"] == 12
        assert lat["p50"] <= lat["p95"] <= lat["p99"]
        assert stats["sustained_req_per_s"] > 0


class TestGreedyDedup:
    def test_identical_greedy_requests_share_one_decode(self, instances):
        """Six concurrent greedy requests for the same instance collapse
        onto a single decode slot; every caller gets the identical
        solution."""
        want = _solver(instances).solve(instances[0])
        result = drive_requests(
            _engine(instances),
            [SolveRequest(instance=instances[0]) for _ in range(6)],
            config=ServeConfig(max_batch_size=8, max_wait_us=50_000.0))
        assert not result.errors
        for solution in result.outcomes:
            assert _identical(want, solution)
        stats = result.stats
        assert stats["responses"] == 6
        assert stats["dedup_hits"] == 5
        # One decode slot served the whole batch.
        assert stats["batch_size"]["max"] == 1.0
        assert stats["batch_size"]["count"] == 1
        # Latency was still observed per *request*, not per decode.
        assert stats["latency_ms"]["count"] == 6

    def test_sampled_requests_never_dedupe(self, instances):
        """Sampled requests own their rng draws: same instance, same
        seed, still two decode slots."""
        requests = [SolveRequest(instance=instances[0], greedy=False,
                                 seed=5) for _ in range(2)]
        result = drive_requests(
            _engine(instances), requests,
            config=ServeConfig(max_batch_size=4, max_wait_us=50_000.0))
        assert not result.errors
        assert result.stats["dedup_hits"] == 0
        assert result.stats["batch_size"]["max"] == 2.0

    def test_dedupe_can_be_disabled(self, instances):
        result = drive_requests(
            _engine(instances),
            [SolveRequest(instance=instances[0]) for _ in range(4)],
            config=ServeConfig(max_batch_size=4, max_wait_us=50_000.0,
                               dedupe_greedy=False))
        assert not result.errors
        assert result.stats["dedup_hits"] == 0
        assert result.stats["batch_size"]["max"] == 4.0


class TestDeadlinesAndAdmission:
    def test_expired_deadline_sheds_without_touching_companions(
            self, instances):
        """A request whose deadline lapses while queued fails with
        DeadlineExceeded; its batch companion is answered normally."""
        want = _solver(instances).solve(instances[1])
        requests = [SolveRequest(instance=instances[0], timeout=1e-9),
                    SolveRequest(instance=instances[1])]
        result = drive_requests(_engine(instances), requests,
                                config=ServeConfig(max_wait_us=20_000.0))
        doomed, live = result.outcomes
        assert isinstance(doomed, DeadlineExceeded)
        assert _identical(want, live)
        assert result.stats["shed_deadline"] == 1
        assert result.stats["responses"] == 1

    def test_overload_rejects_fast_and_recovers(self, instances):
        """Requests beyond max_queue_depth fail with ServiceOverloaded
        *without queuing*; everything admitted still completes."""
        engine = _BlockingEngine(_solver(instances))

        async def run():
            config = ServeConfig(max_wait_us=0.0, max_queue_depth=2)
            async with SolverService(engine, config) as service:
                first = asyncio.ensure_future(service.solve(instances[0]))
                while not engine.entered.is_set():
                    await asyncio.sleep(0.001)
                queued = [asyncio.ensure_future(service.solve(instances[1]))
                          for _ in range(2)]
                await asyncio.sleep(0.01)      # both sit in the queue
                with pytest.raises(ServiceOverloaded):
                    await service.solve(instances[2])
                engine.release.set()
                answers = await asyncio.gather(first, *queued)
            return answers, service.stats()

        answers, stats = asyncio.run(run())
        assert len(answers) == 3
        assert stats["rejected_overload"] == 1
        assert stats["responses"] == 3

    def test_solve_on_stopped_service_raises(self, instances):
        async def run():
            service = SolverService(_engine(instances))
            with pytest.raises(ServiceClosed):
                await service.solve(instances[0])
            async with service:
                pass
            with pytest.raises(ServiceClosed):
                await service.solve(instances[0])

        asyncio.run(run())

    def test_stop_drains_admitted_requests(self, instances):
        """stop() answers everything already queued before shutting down."""

        async def run():
            service = await SolverService(_engine(instances)).start()
            futures = [asyncio.ensure_future(
                           service.solve(instances[i % len(instances)]))
                       for i in range(6)]
            await asyncio.sleep(0)             # let them enqueue
            await service.stop()
            return await asyncio.gather(*futures)

        answers = asyncio.run(run())
        assert len(answers) == 6
        assert all(a.routes is not None for a in answers)


class TestConfigValidation:
    def test_bad_batch_size(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            ServeConfig(max_batch_size=0)

    def test_bad_wait(self):
        with pytest.raises(ValueError, match="max_wait_us"):
            ServeConfig(max_wait_us=-1.0)

    def test_bad_queue_depth(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            ServeConfig(max_queue_depth=0)


class TestClientAndTelemetry:
    def test_run_workload_preserves_request_order(self, instances):
        async def run():
            async with SolverService(_engine(instances)) as service:
                return await run_workload(service, [
                    SolveRequest(instance=instances[2]),
                    SolveRequest(instance=instances[0]),
                    SolveRequest(instance=instances[1])])

        outcomes = asyncio.run(run())
        assert [o.instance for o in outcomes] == \
            [instances[2], instances[0], instances[1]]

    def test_drive_requests_writes_metrics_jsonl(self, instances, tmp_path):
        path = tmp_path / "serve_metrics.jsonl"
        result = drive_requests(
            _engine(instances),
            [SolveRequest(instance=instances[i % len(instances)])
             for i in range(4)],
            metrics_path=path)
        assert len(result.solutions) == 4
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        kinds = {line["type"] for line in lines}
        assert kinds == {"serving_stats", "metrics"}
        stats_line = next(l for l in lines if l["type"] == "serving_stats")
        assert stats_line["responses"] == 4
        assert stats_line["latency_ms"]["count"] == 4
        metrics_line = next(l for l in lines if l["type"] == "metrics")
        assert metrics_line["counters"]["serve.responses"] == 4
        assert "serve.latency_ms" in metrics_line["histograms"]

    def test_serving_metrics_mirror_into_active_tracer(
            self, instances, tmp_path):
        """A live obs tracer sees the serving counters and histograms the
        service records into its own registry."""
        with obs.tracing(tmp_path / "trace.jsonl") as tracer:
            drive_requests(_engine(instances),
                           [SolveRequest(instance=instances[0]),
                            SolveRequest(instance=instances[1])])
        metrics = tracer.metrics
        assert metrics.counters["serve.requests"] == 2
        assert metrics.counters["serve.responses"] == 2
        assert metrics.histogram_summary("serve.latency_ms")["count"] == 2
        # The engine-side spans were captured too (decode ran under obs).
        assert any(name.startswith("span.solve_many")
                   for name in metrics.timings)
