"""PersistentPool: parity with ``parallel_map``, crashes, zero-copy shares."""

import multiprocessing
import os

import numpy as np
import pytest

from repro import obs
from repro.obs import ListSink
from repro.parallel import (
    PersistentPool,
    WorkerCrashError,
    fork_available,
    parallel_map,
    shared_arrays,
)

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform lacks fork")


def square(x):
    return x * x


def draw(x, rng):
    return x + int(rng.integers(0, 1_000_000))


def worker_pid(_):
    return os.getpid()


def read_shared_sum(key):
    arrays = shared_arrays(key)
    return None if arrays is None else float(arrays["data"].sum())


def crash_on_odd(x):
    if x % 2 == 1:
        os._exit(13)
    return x


class TestSerialPath:
    def test_workers_one_is_serial(self):
        with PersistentPool(workers=1) as pool:
            assert pool.map(square, range(8)) == [x * x for x in range(8)]
            assert not pool.started

    def test_single_item_stays_serial(self):
        with PersistentPool(workers=4) as pool:
            assert pool.map(square, [5]) == [25]
            assert not pool.started

    def test_empty_items(self):
        with PersistentPool(workers=4) as pool:
            assert pool.map(square, []) == []

    def test_closure_serial(self):
        offset = 3
        with PersistentPool(workers=1) as pool:
            assert pool.map(lambda x: x + offset, [1, 2]) == [4, 5]


@needs_fork
class TestParallelParity:
    def test_matches_parallel_map(self):
        serial = parallel_map(square, range(20), workers=1)
        with PersistentPool(workers=3) as pool:
            assert pool.map(square, range(20)) == serial

    def test_seeds_match_parallel_map(self):
        # Identical per-item derivation: the pool and the fork fan-out are
        # interchangeable for seeded work.
        reference = parallel_map(draw, range(12), workers=1, seed=99)
        assert parallel_map(draw, range(12), workers=3, seed=99) == reference
        with PersistentPool(workers=3) as pool:
            assert pool.map(draw, range(12), seed=99) == reference
            assert pool.map(draw, range(12), seed=99) == reference

    def test_use_seeds_without_seed(self):
        with PersistentPool(workers=2) as pool:
            flags = pool.map(
                lambda x, rng: isinstance(rng, np.random.Generator),
                range(4), use_seeds=True)
        assert flags == [True, True, True, True]

    def test_workers_stay_resident_across_maps(self):
        with PersistentPool(workers=2) as pool:
            first = set(pool.map(worker_pid, range(16)))
            resident = set(pool.pids())
            second = set(pool.map(worker_pid, range(16)))
        assert first <= resident
        assert second <= resident
        assert os.getpid() not in first

    def test_registered_closure_runs_after_start(self):
        big = list(range(1000))
        pool = PersistentPool(workers=2)
        pool.register("lookup", lambda i: big[i])
        try:
            assert pool.map("lookup", [0, 999]) == [0, 999]
            assert pool.map("lookup", [1, 998]) == [1, 998]
        finally:
            pool.close()

    def test_unregistered_closure_to_started_pool_rejected(self):
        with PersistentPool(workers=2) as pool:
            pool.map(square, range(4))
            assert pool.started
            with pytest.raises(TypeError, match="register"):
                pool.map(lambda x: x + 1, range(4))

    def test_register_after_start_rejected(self):
        with PersistentPool(workers=2) as pool:
            pool.map(square, range(4))
            with pytest.raises(RuntimeError, match="before the pool starts"):
                pool.register("late", square)


@needs_fork
class TestTelemetryParity:
    def _traced(self, runner):
        def work(x):
            obs.count("pool_test.items")
            obs.count("pool_test.value", x)
            obs.event("pool_test.done", item=x)
            return x * x

        sink = ListSink()
        with obs.tracing(sink=sink) as tracer:
            results = runner(work)
            counters = dict(tracer.metrics.counters)
        events = [r for r in sink.records if r["type"] == "event"
                  and r["name"] == "pool_test.done"]
        return results, counters, events

    def test_counters_and_event_order_match_serial(self):
        serial = self._traced(lambda fn: parallel_map(fn, range(8), workers=1))
        with PersistentPool(workers=3) as pool:
            pooled = self._traced(lambda fn: pool.map(fn, range(8)))
        assert pooled[0] == serial[0]
        for name, value in serial[1].items():
            if name.startswith("pool_test."):
                assert pooled[1][name] == value
        assert [r["item"] for r in pooled[2]] == list(range(8))


@needs_fork
class TestFailurePropagation:
    def test_worker_exception_propagates_and_pool_survives(self):
        def explode(x):
            if x == 2:
                raise OSError("disk gone")
            return x

        with PersistentPool(workers=2) as pool:
            with pytest.raises(OSError, match="disk gone"):
                pool.map(explode, range(6), chunksize=1)
            pids = set(pool.pids())
            # Same resident workers keep serving after a plain exception.
            assert pool.map(square, range(6)) == [x * x for x in range(6)]
            assert set(pool.pids()) == pids

    def test_no_silent_rerun_after_exception(self, tmp_path):
        log = tmp_path / "executions.log"

        def record_and_maybe_explode(x):
            with open(log, "a") as handle:
                handle.write(f"{x}\n")
            if x == 1:
                raise RuntimeError("boom")
            return x

        with PersistentPool(workers=3) as pool:
            with pytest.raises(RuntimeError, match="boom"):
                pool.map(record_and_maybe_explode, range(6), chunksize=1)
        executions = log.read_text().split()
        assert len(executions) == len(set(executions))

    def test_worker_crash_raises_and_reports_lost_items(self):
        pool = PersistentPool(workers=2)
        try:
            with pytest.raises(WorkerCrashError) as excinfo:
                pool.map(crash_on_odd, range(8), chunksize=1)
        finally:
            pool.close()
        message = str(excinfo.value)
        assert "died mid-chunk" in message
        assert "nothing was re-executed" in message
        assert pool.closed
        # A crashed pool refuses further maps instead of quietly restarting.
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(square, range(4))

    def test_crash_leaves_no_children_or_shared_blocks(self):
        pool = PersistentPool(workers=2)
        pool.share_arrays("crash-test", {"data": np.arange(4.0)})
        with pytest.raises(WorkerCrashError):
            pool.map(crash_on_odd, range(8), chunksize=1)
        for proc in multiprocessing.active_children():
            proc.join(timeout=5)
        assert pool not in PersistentPool.active_pools()


@needs_fork
class TestZeroCopyShares:
    def test_share_before_start_visible(self):
        pool = PersistentPool(workers=2)
        try:
            pool.share_arrays("zc-a", {"data": np.arange(8.0)})
            sums = pool.map(read_shared_sum, ["zc-a"] * 4)
            assert sums == [28.0] * 4
        finally:
            pool.close()

    def test_parent_mutation_visible_without_reshare(self):
        shm = pytest.importorskip("multiprocessing.shared_memory")
        del shm
        pool = PersistentPool(workers=2)
        try:
            pool.share_arrays("zc-b", {"data": np.zeros(6)})
            pool.map(square, range(4))  # start the pool
            view = shared_arrays("zc-b")
            view["data"][:] = 7.0
            sums = pool.map(read_shared_sum, ["zc-b"] * 4)
            assert sums == [42.0] * 4
        finally:
            pool.close()

    def test_share_after_start(self):
        shm = pytest.importorskip("multiprocessing.shared_memory")
        del shm
        pool = PersistentPool(workers=2)
        try:
            pool.map(square, range(4))
            assert pool.share_arrays("zc-c", {"data": np.full(3, 2.0)})
            assert pool.map(read_shared_sum, ["zc-c"] * 2) == [6.0, 6.0]
        finally:
            pool.close()

    def test_unknown_key_returns_none(self):
        assert shared_arrays("never-shared") is None


@needs_fork
class TestLifecycle:
    def test_close_is_idempotent_and_reaps_children(self):
        pool = PersistentPool(workers=2)
        pool.map(square, range(8))
        resident = set(pool.pids())
        pool.close()
        pool.close()
        assert pool.closed
        live = {proc.pid for proc in multiprocessing.active_children()}
        assert not (resident & live)

    def test_active_pools_tracks_open_pools(self):
        pool = PersistentPool(workers=2)
        try:
            pool.map(square, range(4))
            assert pool in PersistentPool.active_pools()
        finally:
            pool.close()
        assert pool not in PersistentPool.active_pools()

    def test_map_after_close_rejected(self):
        pool = PersistentPool(workers=2)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(square, range(4))
