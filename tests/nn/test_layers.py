"""Tests for nn layers: shapes, gradients, module mechanics, serialisation."""

import numpy as np
import pytest

from repro import nn
from repro.nn import ops

from .gradcheck import numeric_gradient

#: Every test runs under both numpy backends (reference object
#: graph and fused executor); forwards are bit-identical by
#: contract, so shared assertions need no tolerance changes.
pytestmark = pytest.mark.usefixtures("nn_backend")


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestModuleMechanics:
    def test_named_parameters_deterministic_order(self, rng):
        model = nn.MLP([3, 5, 2], rng=rng)
        names = [name for name, _ in model.named_parameters()]
        assert names == sorted(names) or names == [n for n, _ in model.named_parameters()]
        # Re-running yields the same order.
        assert names == [name for name, _ in model.named_parameters()]

    def test_named_parameters_stamp_tensor_names(self, rng):
        enc = nn.TransformerEncoder(8, 2, 2, rng=rng)
        for name, param in enc.named_parameters():
            assert param.name == name
        assert any(p.name.startswith("layers.0.")
                   for p in enc.parameters())

    def test_shared_parameter_keeps_first_name(self, rng):
        layer = nn.Linear(3, 3, bias=False, rng=rng)
        model = nn.Module()
        model.a = layer
        model.b = layer  # same submodule reachable under two attributes
        names = dict(model.named_parameters())
        assert set(names) == {"a.weight", "b.weight"}
        # The stamped name is the first sorted-order path, matching the
        # state_dict key the tensor serialises under.
        assert layer.weight.name == "a.weight"

    def test_parameters_in_list_attributes_found(self, rng):
        enc = nn.TransformerEncoder(8, 2, 2, rng=rng)
        assert enc.num_parameters() > 0
        names = [n for n, _ in enc.named_parameters()]
        assert any("layers.0" in n for n in names)
        assert any("layers.1" in n for n in names)

    def test_zero_grad_clears_all(self, rng):
        model = nn.MLP([3, 4, 1], rng=rng)
        out = model(nn.Tensor(rng.normal(size=(2, 3))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_propagates(self, rng):
        model = nn.Sequential(nn.Linear(3, 3, rng=rng), nn.ReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self, rng):
        model = nn.MLP([3, 4, 2], rng=rng)
        clone = nn.MLP([3, 4, 2], rng=np.random.default_rng(99))
        clone.load_state_dict(model.state_dict())
        x = nn.Tensor(rng.normal(size=(5, 3)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_load_state_dict_rejects_missing_keys(self, rng):
        model = nn.MLP([3, 4, 2], rng=rng)
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self, rng):
        model = nn.Linear(3, 2, rng=rng)
        state = model.state_dict()
        first = next(iter(state))
        state[first] = np.zeros((9, 9))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_num_parameters_counts_elements(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        assert layer.num_parameters() == 3 * 2 + 2


class TestLinear:
    def test_forward_shape(self, rng):
        layer = nn.Linear(4, 7, rng=rng)
        out = layer(nn.Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 7)

    def test_no_bias(self, rng):
        layer = nn.Linear(4, 7, bias=False, rng=rng)
        assert layer.bias is None
        out = layer(nn.Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_weight_gradient_matches_numeric(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        x_data = rng.normal(size=(4, 3))

        def loss_of_weight(w):
            layer.weight.data = w
            return ops.sum(layer(nn.Tensor(x_data)) ** 2.0).item()

        w0 = layer.weight.data.copy()
        numeric = numeric_gradient(loss_of_weight, w0.copy())
        layer.weight.data = w0
        loss = ops.sum(layer(nn.Tensor(x_data)) ** 2.0)
        layer.zero_grad()
        loss.backward()
        np.testing.assert_allclose(layer.weight.grad, numeric, atol=1e-5)


class TestMLP:
    def test_requires_two_sizes(self, rng):
        with pytest.raises(ValueError):
            nn.MLP([3], rng=rng)

    def test_learns_linear_map(self, rng):
        model = nn.MLP([2, 16, 1], rng=rng)
        optimizer = nn.Adam(model.parameters(), lr=1e-2)
        x = rng.normal(size=(64, 2))
        y = (x[:, :1] * 2.0 - x[:, 1:] * 0.5)
        for _ in range(200):
            pred = model(nn.Tensor(x))
            loss = ((pred - nn.Tensor(y)) ** 2.0).mean()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.02

    def test_output_activation(self, rng):
        model = nn.MLP([2, 4, 1], rng=rng, output_activation=nn.Tanh())
        out = model(nn.Tensor(rng.normal(size=(8, 2)) * 10))
        assert np.all(np.abs(out.data) <= 1.0)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = nn.Embedding(10, 4, rng=rng)
        out = emb(np.array([1, 3, 3]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[1], out.data[2])

    def test_out_of_range_raises(self, rng):
        emb = nn.Embedding(5, 2, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_scatters_to_rows(self, rng):
        emb = nn.Embedding(6, 3, rng=rng)
        out = emb(np.array([2, 2, 4]))
        ops.sum(out).backward()
        grad = emb.weight.grad
        np.testing.assert_allclose(grad[2], 2.0)  # selected twice
        np.testing.assert_allclose(grad[4], 1.0)
        np.testing.assert_allclose(grad[0], 0.0)

    def test_trainable(self, rng):
        emb = nn.Embedding(4, 2, rng=rng)
        optimizer = nn.Adam(emb.parameters(), lr=5e-2)
        target = np.array([[1.0, -1.0]])
        for _ in range(100):
            loss = ((emb(np.array([1])) - nn.Tensor(target)) ** 2.0).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(emb.weight.data[1], target[0], atol=0.05)


class TestLayerNorm:
    def test_normalises_last_axis(self, rng):
        layer = nn.LayerNorm(6)
        x = nn.Tensor(rng.normal(size=(4, 6)) * 5 + 3)
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_gradient_flows_to_input(self, rng):
        layer = nn.LayerNorm(5)
        x = nn.Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        w = nn.Tensor(rng.normal(size=(3, 5)))
        ops.sum(ops.mul(layer(x), w)).backward()
        assert x.grad is not None
        assert np.any(x.grad != 0)

    def test_gamma_beta_affect_output(self, rng):
        layer = nn.LayerNorm(4)
        layer.gamma.data = np.full(4, 2.0)
        layer.beta.data = np.full(4, 1.0)
        x = nn.Tensor(rng.normal(size=(2, 4)))
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 1.0, atol=1e-7)


class TestConv2D:
    def test_output_shape_same_padding(self, rng):
        conv = nn.Conv2D(2, 5, kernel_size=3, padding=1, rng=rng)
        out = conv(nn.Tensor(rng.normal(size=(3, 2, 10, 12))))
        assert out.shape == (3, 5, 10, 12)

    def test_output_shape_no_padding(self, rng):
        conv = nn.Conv2D(1, 2, kernel_size=3, padding=0, rng=rng)
        out = conv(nn.Tensor(rng.normal(size=(1, 1, 8, 8))))
        assert out.shape == (1, 2, 6, 6)

    def test_rejects_wrong_channels(self, rng):
        conv = nn.Conv2D(3, 2, rng=rng)
        with pytest.raises(ValueError):
            conv(nn.Tensor(np.zeros((1, 1, 4, 4))))

    def test_matches_manual_convolution(self, rng):
        conv = nn.Conv2D(1, 1, kernel_size=3, padding=1, rng=rng)
        kernel = conv.weight.data.reshape(3, 3)
        x = rng.normal(size=(1, 1, 5, 5))
        out = conv(nn.Tensor(x)).data[0, 0]
        padded = np.pad(x[0, 0], 1)
        expected = np.zeros((5, 5))
        for i in range(5):
            for j in range(5):
                expected[i, j] = (padded[i:i + 3, j:j + 3] * kernel).sum()
        np.testing.assert_allclose(out, expected + conv.bias.data[0], atol=1e-10)

    def test_input_gradient_matches_numeric(self, rng):
        conv = nn.Conv2D(1, 2, kernel_size=3, padding=1, rng=rng)
        x_data = rng.normal(size=(1, 1, 4, 4))

        def loss_fn(arr):
            return ops.sum(conv(nn.Tensor(arr)) ** 2.0).item()

        numeric = numeric_gradient(loss_fn, x_data.copy())
        x = nn.Tensor(x_data, requires_grad=True)
        ops.sum(conv(x) ** 2.0).backward()
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)


class TestSerialization:
    def test_save_load_roundtrip(self, rng, tmp_path):
        model = nn.MLP([3, 8, 2], rng=rng)
        path = tmp_path / "model.npz"
        nn.save_module(model, path)
        fresh = nn.MLP([3, 8, 2], rng=np.random.default_rng(1))
        nn.load_module(fresh, path)
        x = nn.Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_allclose(model(x).data, fresh(x).data)

    def test_load_into_wrong_architecture_fails(self, rng, tmp_path):
        model = nn.MLP([3, 8, 2], rng=rng)
        path = tmp_path / "model.npz"
        nn.save_module(model, path)
        other = nn.MLP([3, 9, 2], rng=rng)
        with pytest.raises((KeyError, ValueError)):
            nn.load_module(other, path)
