"""Batched/masked ops: forward semantics, FD gradients, batched attention.

The batched decode engine rides on a small set of padding-aware
primitives — masked (log-)softmax, masked mean, broadcast, ``pad_stack``
— plus batched forms of multi-head and pointer attention.  These tests
pin three things: finite-difference-verified backward passes (including
fully-masked rows), exact zero gradient flow into padded positions, and
bit-level agreement between one batched forward over padded sets and the
per-item unbatched forwards it replaces.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import MultiHeadAttention, PointerAttention, Tensor, ops

from .gradcheck import check_gradient

#: Every test runs under both numpy backends (reference object
#: graph and fused executor); forwards are bit-identical by
#: contract, so shared assertions need no tolerance changes.
pytestmark = pytest.mark.usefixtures("nn_backend")


def _mask_3x5():
    """A (3, 5) padding mask: rows with 0, 2 and all 5 masked entries."""
    mask = np.zeros((3, 5), dtype=bool)
    mask[1, 3:] = True
    mask[2, :] = True
    return mask


# --------------------------------------------------------------------- #
# Forward semantics
# --------------------------------------------------------------------- #
def test_masked_softmax_matches_plain_softmax_without_padding():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(4, 6))
    mask = np.zeros((4, 6), dtype=bool)
    plain = ops.softmax(Tensor(x)).data
    masked = ops.masked_softmax(Tensor(x), mask).data
    np.testing.assert_array_equal(masked, plain)


def test_masked_softmax_padded_entries_are_exact_zero():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(3, 5))
    mask = _mask_3x5()
    out = ops.masked_softmax(Tensor(x), mask).data
    assert np.all(out[mask] == 0.0)
    # Unpadded rows still normalise to 1; the fully-masked row is all 0.
    np.testing.assert_allclose(out[0].sum(), 1.0)
    np.testing.assert_allclose(out[1].sum(), 1.0)
    assert np.all(out[2] == 0.0)
    # Each live prefix equals the softmax of the unpadded slice.
    np.testing.assert_allclose(out[1, :3],
                               ops.softmax(Tensor(x[1, :3])).data)


def test_masked_log_softmax_matches_log_softmax_on_live_slices():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(3, 5))
    mask = _mask_3x5()
    out = ops.masked_log_softmax(Tensor(x), mask).data
    np.testing.assert_array_equal(out[0],
                                  ops.log_softmax(Tensor(x[0])).data)
    np.testing.assert_array_equal(out[1, :3],
                                  ops.log_softmax(Tensor(x[1, :3])).data)
    assert np.all(out[mask] == ops.NEG_INF)
    assert np.all(np.isfinite(out[:2][~mask[:2]]))


def test_masked_mean_ignores_padding_and_empty_rows():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(3, 5))
    mask = _mask_3x5()
    out = ops.masked_mean(Tensor(x), mask, axis=1).data
    np.testing.assert_allclose(out[0], x[0].mean())
    np.testing.assert_allclose(out[1], x[1, :3].mean())
    assert out[2] == 0.0  # empty row -> defined as zero, not NaN


def test_pad_stack_shapes_and_mask():
    rows = [np.arange(3.0), np.arange(5.0), np.array([])]
    batch, mask = nn.pad_stack(rows, pad_value=-1.0)
    assert batch.shape == (3, 5) and mask.shape == (3, 5)
    np.testing.assert_array_equal(batch[0], [0, 1, 2, -1, -1])
    np.testing.assert_array_equal(batch[1], [0, 1, 2, 3, 4])
    np.testing.assert_array_equal(batch[2], [-1] * 5)
    np.testing.assert_array_equal(
        mask, [[False, False, False, True, True],
               [False] * 5,
               [True] * 5])


def test_pad_stack_trailing_dims():
    rows = [np.ones((2, 4)), np.zeros((0, 4)), 2.0 * np.ones((1, 4))]
    batch, mask = nn.pad_stack(rows)
    assert batch.shape == (3, 2, 4)
    np.testing.assert_array_equal(mask,
                                  [[False, False], [True, True],
                                   [False, True]])
    assert np.all(batch[1] == 0.0) and np.all(batch[2, 1] == 0.0)


def test_broadcast_to_forward_and_gradient():
    rng = np.random.default_rng(4)
    x = rng.normal(size=(2, 3))
    out = ops.broadcast_to(Tensor(x), (4, 2, 3))
    np.testing.assert_array_equal(out.data, np.broadcast_to(x, (4, 2, 3)))
    check_gradient(
        lambda t: ops.sum(ops.broadcast_to(t, (4, 2, 3)) ** 2.0),
        (2, 3), rng)


# --------------------------------------------------------------------- #
# Finite-difference gradients
# --------------------------------------------------------------------- #
def test_masked_softmax_gradient():
    rng = np.random.default_rng(5)
    mask = _mask_3x5()
    weights = rng.normal(size=(3, 5))

    def build(t):
        return ops.sum(ops.masked_softmax(t, mask) * Tensor(weights))

    check_gradient(build, (3, 5), rng)


def test_masked_log_softmax_gradient():
    rng = np.random.default_rng(6)
    mask = _mask_3x5()
    # Zero weight on padded outputs: they are the NEG_INF constant, so a
    # finite-difference probe must not read them.
    weights = np.where(mask, 0.0, rng.normal(size=(3, 5)))

    def build(t):
        return ops.sum(ops.masked_log_softmax(t, mask) * Tensor(weights))

    check_gradient(build, (3, 5), rng)


def test_masked_mean_gradient():
    rng = np.random.default_rng(7)
    mask = _mask_3x5()
    weights = rng.normal(size=(3,))

    def build(t):
        return ops.sum(ops.masked_mean(t, mask, axis=1) * Tensor(weights))

    check_gradient(build, (3, 5), rng)


@pytest.mark.parametrize("op", [ops.masked_softmax, ops.masked_log_softmax])
def test_masked_ops_zero_gradient_into_padding(op):
    rng = np.random.default_rng(8)
    mask = _mask_3x5()
    x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
    weights = np.where(mask, 0.0, rng.normal(size=(3, 5)))
    ops.sum(op(x, mask) * Tensor(weights)).backward()
    assert np.all(x.grad[mask] == 0.0)
    assert np.all(x.grad[2] == 0.0)  # fully-masked row contributes nothing


# --------------------------------------------------------------------- #
# Batched attention vs. per-item reference
# --------------------------------------------------------------------- #
def test_batched_mha_matches_per_item_forward():
    rng = np.random.default_rng(9)
    mha = MultiHeadAttention(d_model=8, num_heads=2,
                             rng=np.random.default_rng(0))
    lengths = [5, 3, 1]
    items = [rng.normal(size=(n, 8)) for n in lengths]
    batch, mask = nn.pad_stack(items)
    out = mha(Tensor(batch), key_padding_mask=mask).data
    for k, item in enumerate(items):
        ref = mha(Tensor(item)).data
        np.testing.assert_allclose(out[k, :lengths[k]], ref,
                                   atol=1e-12, rtol=1e-12)


def test_batched_mha_key_padding_mask_gradcheck():
    rng = np.random.default_rng(10)
    mha = MultiHeadAttention(d_model=4, num_heads=2,
                             rng=np.random.default_rng(1))
    mask = np.array([[False, False, True], [False, True, True]])
    # Read only live outputs; padded queries attend too but are dropped.
    weights = np.where(mask[..., None], 0.0, rng.normal(size=(2, 3, 4)))

    def build(t):
        return ops.sum(mha(t, key_padding_mask=mask) * Tensor(weights))

    check_gradient(build, (2, 3, 4), rng)


def test_batched_pointer_attention_matches_serial():
    rng = np.random.default_rng(11)
    pointer = PointerAttention(d_query=6, d_key_in=4,
                               rng=np.random.default_rng(2))
    queries = rng.normal(size=(3, 6))
    keys = rng.normal(size=(3, 5, 4))
    mask = _mask_3x5()
    batched = pointer(Tensor(queries), Tensor(keys), mask=mask).data
    for k in range(3):
        serial = pointer(Tensor(queries[k]), Tensor(keys[k]),
                         mask=mask[k]).data
        np.testing.assert_allclose(batched[k], serial,
                                   atol=1e-12, rtol=1e-12)
