"""Tests for the autograd Tensor core: graph mechanics, broadcasting, modes."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, is_grad_enabled, no_grad
from repro.nn.tensor import unbroadcast


class TestTensorBasics:
    def test_wraps_array_as_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor([1.0, 2.0]).item()

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))
        assert "requires_grad" not in repr(Tensor(1.0))

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_coerces(self):
        t = as_tensor([1.0, 2.0])
        assert isinstance(t, Tensor)

    def test_detach_cuts_graph(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * 3.0).detach()
        assert not y.requires_grad

    def test_numpy_returns_underlying(self):
        arr = np.ones(3)
        assert Tensor(arr).numpy() is not None


class TestBackward:
    def test_simple_chain(self):
        x = Tensor(3.0, requires_grad=True)
        y = x * x + 2.0 * x + 1.0
        y.backward()
        assert x.grad == pytest.approx(2 * 3.0 + 2.0)

    def test_gradient_accumulates_across_backwards(self):
        x = Tensor(2.0, requires_grad=True)
        (x * x).backward()
        first = float(x.grad)
        (x * x).backward()
        assert float(x.grad) == pytest.approx(2 * first)

    def test_zero_grad(self):
        x = Tensor(2.0, requires_grad=True)
        (x * x).backward()
        x.zero_grad()
        assert x.grad is None

    def test_shared_subexpression_counted_once_per_path(self):
        # y = x*x uses x twice: dy/dx = 2x.
        x = Tensor(4.0, requires_grad=True)
        (x * x).backward()
        assert x.grad == pytest.approx(8.0)

    def test_diamond_graph(self):
        # z = (x + x) * (x + 1) -> dz/dx = 2(x+1) + 2x = 4x + 2
        x = Tensor(3.0, requires_grad=True)
        z = (x + x) * (x + 1.0)
        z.backward()
        assert x.grad == pytest.approx(4 * 3.0 + 2.0)

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(1.0).backward()

    def test_backward_on_vector_without_grad_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()

    def test_backward_with_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_deep_chain_does_not_overflow(self):
        # Iterative topo-sort must handle long decode trajectories.
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        assert x.grad == pytest.approx(1.0)


class TestBroadcasting:
    def test_unbroadcast_leading_axis(self):
        grad = np.ones((3, 4))
        reduced = unbroadcast(grad, (4,))
        np.testing.assert_allclose(reduced, np.full(4, 3.0))

    def test_unbroadcast_keepdim_axis(self):
        grad = np.ones((3, 4))
        reduced = unbroadcast(grad, (3, 1))
        np.testing.assert_allclose(reduced, np.full((3, 1), 4.0))

    def test_unbroadcast_noop(self):
        grad = np.ones((2, 2))
        assert unbroadcast(grad, (2, 2)) is grad

    def test_add_broadcast_grad(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_mul_scalar_broadcast_grad(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        b = Tensor(2.0, requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        assert b.grad == pytest.approx(np.arange(6.0).sum())


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        x = Tensor(2.0, requires_grad=True)
        with no_grad():
            y = x * x
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_requires_grad_suppressed_inside_no_grad(self):
        with no_grad():
            t = Tensor(1.0, requires_grad=True)
        assert not t.requires_grad


class TestNoGradEdgeCases:
    def test_exception_interrupted_no_grad_restores_state(self):
        assert is_grad_enabled()
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_exception_in_inner_nested_no_grad(self):
        with no_grad():
            with pytest.raises(ValueError):
                with no_grad():
                    raise ValueError("inner")
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_graph_resumes_after_interrupted_no_grad(self):
        x = Tensor(3.0, requires_grad=True)
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        y = x * x
        y.backward()
        assert x.grad == pytest.approx(6.0)


class TestBackwardEdgeCases:
    def test_non_scalar_root_without_grad_raises(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError, match="scalars"):
            (t * 2.0).backward()

    def test_repeated_backward_on_same_root_accumulates(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * x
        y.backward()
        y.backward()
        assert x.grad == pytest.approx(8.0)

    def test_explicit_grad_scales_accumulation(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        y.backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(x.grad, [2.0, 4.0, 6.0])
        y.backward(np.ones(3))
        np.testing.assert_allclose(x.grad, [4.0, 6.0, 8.0])

    def test_backward_under_no_grad_still_propagates(self):
        # no_grad gates graph *construction*, not traversal of an
        # existing graph.
        x = Tensor(2.0, requires_grad=True)
        y = x * x
        with no_grad():
            y.backward()
        assert x.grad == pytest.approx(4.0)


class TestUnbroadcastEdgeCases:
    def test_unbroadcast_to_scalar_shape(self):
        grad = np.ones((2, 3))
        reduced = unbroadcast(grad, ())
        assert np.asarray(reduced).shape == ()
        assert float(reduced) == pytest.approx(6.0)

    def test_unbroadcast_multiple_mixed_axes(self):
        grad = np.ones((2, 3, 4))
        reduced = unbroadcast(grad, (1, 3, 1))
        assert reduced.shape == (1, 3, 1)
        np.testing.assert_allclose(reduced, np.full((1, 3, 1), 8.0))

    def test_unbroadcast_leading_and_keepdim(self):
        grad = np.ones((5, 2, 3))
        reduced = unbroadcast(grad, (2, 1))
        assert reduced.shape == (2, 1)
        np.testing.assert_allclose(reduced, np.full((2, 1), 15.0))
