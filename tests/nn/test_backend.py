"""Backend seam: registry mechanics, kernel parity, FLOP reconciliation.

The reference backend composes each kernel from primitive ops and is the
parity oracle; the fused backend lowers each kernel to one graph node.
These tests pin the seam's contract:

* forwards are **bit-identical** between reference and fused (the fused
  forward replays the reference arithmetic in the same order);
* backwards agree with the reference graph *and* with central
  finite differences under both backends;
* the profiler's ``fused.*`` FLOP entries reconcile with the closed
  forms the unfused compositions record, so cross-backend profiles stay
  comparable.
"""

import math

import numpy as np
import pytest

from repro import nn
from repro.nn import backend as backend_mod
from repro.nn import ops
from repro.nn.fused import scratch_pool
from repro.obs.profile import OpProfiler, profiling

from .gradcheck import numeric_gradient

BACKENDS = ["reference", "fused"]


@pytest.fixture
def rng():
    return np.random.default_rng(3)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_both_numpy_backends_registered(self):
        names = nn.available_backends()
        assert "reference" in names and "fused" in names

    def test_set_backend_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            nn.set_backend("no-such-backend")

    def test_use_backend_restores_previous(self):
        before = nn.backend_name()
        with nn.use_backend("fused"):
            assert nn.backend_name() == "fused"
            with nn.use_backend("reference"):
                assert nn.backend_name() == "reference"
            assert nn.backend_name() == "fused"
        assert nn.backend_name() == before

    def test_env_var_resolution_validates(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_CURRENT", None)
        monkeypatch.setenv(backend_mod.ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="not a registered backend"):
            nn.get_backend()
        monkeypatch.setenv(backend_mod.ENV_VAR, "fused")
        monkeypatch.setattr(backend_mod, "_CURRENT", None)
        assert nn.get_backend().name == "fused"

    def test_concurrent_first_resolution_is_single(self, monkeypatch):
        """Two first calls racing from different threads must resolve
        the environment exactly once (regression: the unguarded
        read-check-write let both threads run the resolution)."""
        import threading

        class CountingBackends(dict):
            def __init__(self, base):
                super().__init__(base)
                self.lookups = 0

            def __getitem__(self, name):
                self.lookups += 1
                return super().__getitem__(name)

        counting = CountingBackends(backend_mod._BACKENDS)
        monkeypatch.setattr(backend_mod, "_BACKENDS", counting)
        monkeypatch.setattr(backend_mod, "_CURRENT", None)
        monkeypatch.setenv(backend_mod.ENV_VAR, "fused")

        num_threads = 8
        barrier = threading.Barrier(num_threads)
        resolved = [None] * num_threads

        def resolve(i):
            barrier.wait()
            resolved[i] = backend_mod.get_backend()

        threads = [threading.Thread(target=resolve, args=(i,))
                   for i in range(num_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert all(b is resolved[0] for b in resolved)
        assert resolved[0].name == "fused"
        # The registry was consulted exactly once: one resolution total.
        assert counting.lookups == 1


# --------------------------------------------------------------------- #
# Kernel catalogue: (name, builder) pairs used by parity and FD checks.
# Builders return (inputs, run) where run(backend) -> output Tensor and
# `inputs` are the leaf tensors whose gradients the tests compare.
# --------------------------------------------------------------------- #
def _kernel_cases(rng):
    x = nn.Tensor(rng.normal(size=(5, 8)), requires_grad=True)
    w = nn.Tensor(rng.normal(size=(8, 4)), requires_grad=True)
    b = nn.Tensor(rng.normal(size=(4,)), requires_grad=True)
    gamma = nn.Tensor(rng.normal(size=(8,)), requires_grad=True)
    beta = nn.Tensor(rng.normal(size=(8,)), requires_grad=True)
    w1 = nn.Tensor(rng.normal(size=(8, 12)), requires_grad=True)
    b1 = nn.Tensor(rng.normal(size=(12,)), requires_grad=True)
    w2 = nn.Tensor(rng.normal(size=(12, 4)), requires_grad=True)
    b2 = nn.Tensor(rng.normal(size=(4,)), requires_grad=True)
    q = nn.Tensor(rng.normal(size=(2, 5, 8)), requires_grad=True)
    k = nn.Tensor(rng.normal(size=(2, 7, 8)), requires_grad=True)
    v = nn.Tensor(rng.normal(size=(2, 7, 8)), requires_grad=True)
    attn_mask = np.zeros((2, 5, 7), dtype=bool)
    attn_mask[0, :, 5:] = True
    attn_mask[1, 2, :3] = True
    scores = nn.Tensor(rng.normal(size=(3, 6)), requires_grad=True)
    ptr_mask = np.zeros((3, 6), dtype=bool)
    ptr_mask[1, 4:] = True
    mm_x = nn.Tensor(rng.normal(size=(3, 5, 4)), requires_grad=True)
    mm_mask = np.zeros((3, 5, 1), dtype=bool)
    mm_mask[0, 3:] = True
    chain_x = nn.Tensor(rng.normal(size=(4, 6)), requires_grad=True)
    stages = (("mul", 0.5), ("add", 0.25), ("tanh",), ("mul", 2.0),
              ("sigmoid",), ("clip_tanh", 3.0), ("relu",))
    return [
        ("linear", (x, w), lambda be: be.linear(x, w)),
        ("linear_bias", (x, w, b), lambda be: be.linear(x, w, b)),
        ("layernorm", (x, gamma, beta),
         lambda be: be.layernorm(x, gamma, beta, 1e-5)),
        ("ffn", (x, w1, b1, w2, b2),
         lambda be: be.ffn(x, w1, b1, w2, b2)),
        ("attention", (q, k, v), lambda be: be.attention(q, k, v)),
        ("attention_masked", (q, k, v),
         lambda be: be.attention(q, k, v, mask=attn_mask)),
        ("pointer_tail", (scores,),
         lambda be: be.pointer_tail(scores, 1.0 / math.sqrt(8.0), 10.0)),
        ("pointer_tail_masked", (scores,),
         lambda be: be.pointer_tail(scores, 0.3, 5.0, mask=ptr_mask)),
        ("masked_mean", (mm_x,),
         lambda be: be.masked_mean(mm_x, mm_mask, 1)),
        ("chain", (chain_x,), lambda be: be.chain(chain_x, stages)),
    ]


def _case_ids(rng=np.random.default_rng(3)):
    return [name for name, _, _ in _kernel_cases(rng)]


class TestKernelParity:
    @pytest.mark.parametrize("case", range(len(_case_ids())),
                             ids=_case_ids())
    def test_forward_bit_identical_and_grads_match(self, case, rng):
        ref_cases = _kernel_cases(rng)
        name, inputs, run = ref_cases[case]
        ref = run(nn.backend._BACKENDS["reference"])
        ref.sum().backward()
        ref_grads = [np.array(t.grad) for t in inputs]
        for t in inputs:
            t.grad = None
        fused = run(nn.backend._BACKENDS["fused"])
        # Forward contract: the fused kernel replays the reference
        # arithmetic, so values are byte-for-byte equal.
        np.testing.assert_array_equal(fused.data, ref.data, err_msg=name)
        fused.sum().backward()
        for t, g in zip(inputs, ref_grads):
            np.testing.assert_allclose(t.grad, g, rtol=1e-12, atol=1e-12,
                                       err_msg=name)

    @pytest.mark.parametrize("backend_name", BACKENDS)
    @pytest.mark.parametrize("case", range(len(_case_ids())),
                             ids=_case_ids())
    def test_finite_difference_gradients(self, backend_name, case, rng):
        cases = _kernel_cases(rng)
        name, inputs, run = cases[case]
        if name == "pointer_tail_masked":
            # Masked logits are the NEG_INF constant; their magnitude
            # (1e9) swamps central-difference precision on the sum.
            pytest.skip("NEG_INF fill defeats finite-difference precision")
        be = nn.backend._BACKENDS[backend_name]
        out = run(be)
        out.sum().backward()
        for t in inputs:
            def scalar(arr, t=t):
                saved = t.data.copy()
                t.data[...] = arr
                with nn.no_grad():
                    value = float(run(be).sum().data)
                t.data[...] = saved
                return value
            numeric = numeric_gradient(scalar, t.data.copy())
            np.testing.assert_allclose(t.grad, numeric, rtol=1e-4, atol=1e-5,
                                       err_msg=f"{name}/{t.shape}")

    def test_chain_empty_stages_is_identity(self):
        x = nn.Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        for backend_name in BACKENDS:
            out = nn.backend._BACKENDS[backend_name].chain(x, ())
            np.testing.assert_array_equal(out.data, x.data)

    def test_no_grad_builds_no_graph(self, rng):
        x = nn.Tensor(rng.normal(size=(3, 8)), requires_grad=True)
        w = nn.Tensor(rng.normal(size=(8, 2)), requires_grad=True)
        for backend_name in BACKENDS:
            with nn.no_grad():
                out = nn.backend._BACKENDS[backend_name].linear(x, w)
            assert not out.requires_grad


# --------------------------------------------------------------------- #
# End-to-end layer parity (the seam is fetched per forward call)
# --------------------------------------------------------------------- #
class TestLayerParity:
    def test_transformer_encoder_forward_bit_identical(self, rng):
        enc = nn.TransformerEncoder(8, 2, 2, rng=rng)
        x = nn.Tensor(rng.normal(size=(6, 8)))
        with nn.use_backend("reference"):
            ref = enc(x).data.copy()
        with nn.use_backend("fused"):
            fused = enc(x).data.copy()
        np.testing.assert_array_equal(fused, ref)

    def test_transformer_encoder_param_grads_close(self, rng):
        enc = nn.TransformerEncoder(8, 2, 2, rng=rng)
        x = nn.Tensor(rng.normal(size=(6, 8)))
        grads = {}
        for backend_name in BACKENDS:
            enc.zero_grad()
            with nn.use_backend(backend_name):
                enc(x).sum().backward()
            grads[backend_name] = [np.array(p.grad)
                                   for p in enc.parameters()]
        for ref, fused in zip(grads["reference"], grads["fused"]):
            np.testing.assert_allclose(fused, ref, rtol=1e-10, atol=1e-12)


# --------------------------------------------------------------------- #
# FLOP reconciliation: fused.* entries match the unfused closed forms
# --------------------------------------------------------------------- #
class TestFusedFlops:
    def _profile(self, run):
        profiler = OpProfiler()
        with profiling(profiler=profiler):
            run()
        return profiler

    def test_fused_linear_matches_layer_closed_form(self, rng):
        layer = nn.Linear(16, 4, rng=rng)
        x = nn.Tensor(rng.normal(size=(8, 16)))
        with nn.use_backend("fused"):
            profiler = self._profile(lambda: layer(x))
        assert profiler.ops["fused.linear"].flops == layer.forward_flops(8)

    def test_fused_attention_matches_reference_composition(self, rng):
        q = nn.Tensor(rng.normal(size=(2, 5, 8)))
        k = nn.Tensor(rng.normal(size=(2, 7, 8)))
        v = nn.Tensor(rng.normal(size=(2, 7, 8)))
        ref = nn.backend._BACKENDS["reference"]
        with nn.use_backend("reference"):
            p_ref = self._profile(lambda: ref.attention(q, k, v))
        reference_total = sum(stat.flops for stat in p_ref.ops.values())
        fused = nn.backend._BACKENDS["fused"]
        with nn.use_backend("fused"):
            p_fused = self._profile(lambda: fused.attention(q, k, v))
        assert p_fused.ops["fused.attention"].flops == reference_total

    def test_fused_ops_record_nonzero_bytes(self, rng):
        layer = nn.Linear(8, 8, rng=rng)
        x = nn.Tensor(rng.normal(size=(4, 8)))
        with nn.use_backend("fused"):
            profiler = self._profile(lambda: layer(x))
        assert profiler.ops["fused.linear"].nbytes > 0


# --------------------------------------------------------------------- #
# Scratch pool
# --------------------------------------------------------------------- #
class TestScratchPool:
    def test_backward_populates_pool_and_clear_empties(self, rng):
        pool = scratch_pool()
        pool.clear()
        q = nn.Tensor(rng.normal(size=(2, 5, 8)), requires_grad=True)
        k = nn.Tensor(rng.normal(size=(2, 7, 8)), requires_grad=True)
        v = nn.Tensor(rng.normal(size=(2, 7, 8)), requires_grad=True)
        out = nn.backend._BACKENDS["fused"].attention(q, k, v)
        out.sum().backward()
        assert pool.cached_bytes() > 0
        pool.clear()
        assert pool.cached_bytes() == 0

    def test_pool_reuses_buffers_across_iterations(self, rng):
        pool = scratch_pool()
        pool.clear()
        def step():
            q = nn.Tensor(rng.normal(size=(1, 4, 8)), requires_grad=True)
            k = nn.Tensor(rng.normal(size=(1, 6, 8)), requires_grad=True)
            v = nn.Tensor(rng.normal(size=(1, 6, 8)), requires_grad=True)
            nn.backend._BACKENDS["fused"].attention(q, k, v).sum().backward()
        step()
        after_first = pool.cached_bytes()
        for _ in range(3):
            step()
        # Steady state: same shapes recycle the same buffers.
        assert pool.cached_bytes() == after_first


@pytest.mark.skipif("torch" not in nn.available_backends(),
                    reason="torch backend registers only when torch imports")
class TestTorchBackend:  # pragma: no cover - exercised only with torch
    def test_linear_close_to_reference(self, rng):
        x = nn.Tensor(rng.normal(size=(5, 8)))
        w = nn.Tensor(rng.normal(size=(8, 4)))
        ref = nn.backend._BACKENDS["reference"].linear(x, w)
        tb = nn.backend._BACKENDS["torch"].linear(x, w)
        np.testing.assert_allclose(tb.data, ref.data, rtol=1e-12, atol=1e-12)
