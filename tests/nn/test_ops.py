"""Gradient-correctness tests for every differentiable op (finite differences)."""

import numpy as np
import pytest

from repro.nn import Tensor, ops

from .gradcheck import check_gradient


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestArithmeticGradients:
    def test_add(self, rng):
        other = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda x: ops.sum(ops.add(x, other)), (3, 4), rng)

    def test_sub(self, rng):
        other = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda x: ops.sum(ops.sub(other, x)), (3, 4), rng)

    def test_mul(self, rng):
        other = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda x: ops.sum(ops.mul(x, other)), (3, 4), rng)

    def test_div_numerator(self, rng):
        other = Tensor(rng.normal(size=(3, 4)) + 3.0)
        check_gradient(lambda x: ops.sum(ops.div(x, other)), (3, 4), rng)

    def test_div_denominator(self, rng):
        other = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda x: ops.sum(ops.div(other, x)), (3, 4), rng,
                       shift=4.0)

    def test_neg(self, rng):
        check_gradient(lambda x: ops.sum(ops.neg(x)), (5,), rng)

    def test_power(self, rng):
        check_gradient(lambda x: ops.sum(ops.power(x, 3.0)), (4,), rng)

    def test_abs(self, rng):
        check_gradient(lambda x: ops.sum(ops.abs(x)), (4,), rng, shift=2.0)

    def test_matmul_2d(self, rng):
        other = Tensor(rng.normal(size=(4, 5)))
        check_gradient(lambda x: ops.sum(ops.matmul(x, other)), (3, 4), rng)

    def test_matmul_2d_right(self, rng):
        other = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda x: ops.sum(ops.matmul(other, x)), (4, 5), rng)

    def test_matmul_batched(self, rng):
        other = Tensor(rng.normal(size=(2, 4, 5)))
        check_gradient(lambda x: ops.sum(ops.matmul(x, other)), (2, 3, 4), rng)

    def test_matmul_batched_broadcast_left(self, rng):
        other = Tensor(rng.normal(size=(2, 4, 5)))
        check_gradient(lambda x: ops.sum(ops.matmul(x, other)), (3, 4), rng)

    def test_matmul_vector_right(self, rng):
        other = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda x: ops.sum(ops.matmul(other, x)), (4,), rng)

    def test_matmul_vector_left(self, rng):
        other = Tensor(rng.normal(size=(4, 5)))
        check_gradient(lambda x: ops.sum(ops.matmul(x, other)), (4,), rng)

    def test_matmul_vector_vector(self, rng):
        other = Tensor(rng.normal(size=4))
        check_gradient(lambda x: ops.matmul(x, other), (4,), rng)


class TestElementwiseGradients:
    def test_exp(self, rng):
        check_gradient(lambda x: ops.sum(ops.exp(x)), (3, 3), rng)

    def test_log(self, rng):
        check_gradient(lambda x: ops.sum(ops.log(x)), (3, 3), rng,
                       scale=0.2, shift=2.0)

    def test_sqrt(self, rng):
        check_gradient(lambda x: ops.sum(ops.sqrt(x)), (3, 3), rng,
                       scale=0.2, shift=2.0)

    def test_tanh(self, rng):
        check_gradient(lambda x: ops.sum(ops.tanh(x)), (3, 3), rng)

    def test_sigmoid(self, rng):
        check_gradient(lambda x: ops.sum(ops.sigmoid(x)), (3, 3), rng)

    def test_relu(self, rng):
        check_gradient(lambda x: ops.sum(ops.relu(x)), (3, 3), rng, shift=1.5)

    def test_clip_tanh(self, rng):
        check_gradient(lambda x: ops.sum(ops.clip_tanh(x, 10.0)), (5,), rng)


class TestReductionGradients:
    def test_sum_all(self, rng):
        check_gradient(lambda x: ops.sum(x), (3, 4), rng)

    def test_sum_axis(self, rng):
        check_gradient(lambda x: ops.sum(ops.mul(ops.sum(x, axis=0), 2.0)), (3, 4), rng)

    def test_sum_axis_keepdims(self, rng):
        check_gradient(
            lambda x: ops.sum(ops.mul(ops.sum(x, axis=1, keepdims=True), 3.0)),
            (3, 4), rng)

    def test_mean_all(self, rng):
        check_gradient(lambda x: ops.mean(x), (3, 4), rng)

    def test_mean_axis(self, rng):
        check_gradient(lambda x: ops.sum(ops.mean(x, axis=1)), (3, 4), rng)

    def test_max_all(self, rng):
        check_gradient(lambda x: ops.max(x), (3, 4), rng)

    def test_max_axis(self, rng):
        check_gradient(lambda x: ops.sum(ops.max(x, axis=0)), (3, 4), rng)

    def test_max_ties_split_gradient(self):
        x = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        ops.max(x).backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5, 0.0])


class TestShapeGradients:
    def test_reshape(self, rng):
        other = Tensor(rng.normal(size=(2, 6)))
        check_gradient(lambda x: ops.sum(ops.mul(ops.reshape(x, (2, 6)), other)),
                       (3, 4), rng)

    def test_transpose_default(self, rng):
        other = Tensor(rng.normal(size=(4, 3)))
        check_gradient(lambda x: ops.sum(ops.mul(ops.transpose(x), other)),
                       (3, 4), rng)

    def test_transpose_axes(self, rng):
        other = Tensor(rng.normal(size=(4, 2, 3)))
        check_gradient(
            lambda x: ops.sum(ops.mul(ops.transpose(x, (2, 0, 1)), other)),
            (2, 3, 4), rng)

    def test_concat(self, rng):
        other = Tensor(rng.normal(size=(3, 4)))
        weight = Tensor(rng.normal(size=(6, 4)))
        check_gradient(
            lambda x: ops.sum(ops.mul(ops.concat([x, other], axis=0), weight)),
            (3, 4), rng)

    def test_stack(self, rng):
        other = Tensor(rng.normal(size=(3,)))
        weight = Tensor(rng.normal(size=(2, 3)))
        check_gradient(
            lambda x: ops.sum(ops.mul(ops.stack([x, other]), weight)), (3,), rng)

    def test_getitem(self, rng):
        check_gradient(lambda x: ops.sum(ops.mul(x[1:3], 2.0)), (5, 2), rng)

    def test_gather_rows(self, rng):
        idx = np.array([0, 2, 2, 1])
        weight = Tensor(rng.normal(size=(4, 3)))
        check_gradient(
            lambda x: ops.sum(ops.mul(ops.gather_rows(x, idx), weight)),
            (3, 3), rng)

    def test_gather_rows_repeated_index_accumulates(self):
        x = Tensor(np.eye(3), requires_grad=True)
        out = ops.gather_rows(x, np.array([1, 1]))
        ops.sum(out).backward()
        np.testing.assert_allclose(x.grad[1], [2.0, 2.0, 2.0])
        np.testing.assert_allclose(x.grad[0], 0.0)


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        out = ops.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_softmax_gradient(self, rng):
        weight = Tensor(rng.normal(size=(3, 5)))
        check_gradient(
            lambda x: ops.sum(ops.mul(ops.softmax(x, axis=-1), weight)),
            (3, 5), rng)

    def test_log_softmax_gradient(self, rng):
        weight = Tensor(rng.normal(size=(3, 5)))
        check_gradient(
            lambda x: ops.sum(ops.mul(ops.log_softmax(x, axis=-1), weight)),
            (3, 5), rng)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(2, 7)))
        np.testing.assert_allclose(
            ops.log_softmax(x).data, np.log(ops.softmax(x).data), atol=1e-12)

    def test_softmax_stable_for_large_logits(self):
        x = Tensor(np.array([1000.0, 1000.0]))
        out = ops.softmax(x)
        np.testing.assert_allclose(out.data, [0.5, 0.5])


class TestMaskingOps:
    def test_masked_fill_forward(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]))
        out = ops.masked_fill(x, np.array([False, True, False]), -99.0)
        np.testing.assert_allclose(out.data, [1.0, -99.0, 3.0])

    def test_masked_fill_blocks_gradient(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        out = ops.masked_fill(x, np.array([False, True, False]), -99.0)
        ops.sum(out).backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.0, 1.0])

    def test_masked_fill_mask_mutation_after_forward(self):
        # Regression: pointer decoders mutate their visited mask in place
        # between forward and backward; the op must snapshot the mask.
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        mask = np.array([False, True, False])
        out = ops.masked_fill(x, mask, -99.0)
        mask[:] = True  # mutate after the op was recorded
        ops.sum(out).backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.0, 1.0])

    def test_where_forward_and_grad(self, rng):
        cond = np.array([True, False, True])
        b = Tensor(np.zeros(3), requires_grad=True)
        a = Tensor(np.ones(3), requires_grad=True)
        out = ops.where(cond, a, b)
        ops.sum(out).backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])

    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10,)))
        out = ops.dropout(x, 0.5, rng, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_scales_kept_units(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(10000))
        out = ops.dropout(x, 0.5, rng, training=True)
        # Inverted dropout keeps the expectation: mean stays near 1.
        assert abs(out.data.mean() - 1.0) < 0.05
