"""Finite-difference gradient checking utilities for the autograd tests."""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(x)
        flat[i] = original - eps
        down = fn(x)
        flat[i] = original
        grad_flat[i] = (up - down) / (2.0 * eps)
    return grad


def check_gradient(build_fn, shape, rng, atol: float = 1e-5, rtol: float = 1e-4,
                   scale: float = 1.0, shift: float = 0.0) -> None:
    """Assert autograd and numeric gradients agree for ``build_fn``.

    ``build_fn`` maps a Tensor to a scalar Tensor.  ``scale``/``shift`` let
    callers keep inputs inside an op's domain (e.g. positive for log).
    """
    x_data = rng.normal(size=shape) * scale + shift

    def scalar_fn(arr: np.ndarray) -> float:
        return build_fn(Tensor(arr)).item()

    numeric = numeric_gradient(scalar_fn, x_data.copy())

    x = Tensor(x_data, requires_grad=True)
    out = build_fn(x)
    out.backward()
    assert x.grad is not None, "no gradient propagated"
    np.testing.assert_allclose(x.grad, numeric, atol=atol, rtol=rtol)
