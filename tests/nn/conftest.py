"""Shared fixtures for the nn test package.

``nn_backend`` parametrizes a test over every numpy execution backend
(reference object-graph autograd and the fused graph executor), so the
layer/attention/batched-op suites pin both strategies.  The torch
backend, registered only when torch is importable, is exercised by
``test_backend.py`` separately at tolerance level — its GEMMs reorder
reductions, so it cannot join bit-identity assertions.
"""

import pytest

from repro import nn


@pytest.fixture(params=["reference", "fused"])
def nn_backend(request):
    """Activate one registered backend for the duration of the test."""
    with nn.use_backend(request.param):
        yield request.param
