"""Shape-heterogeneous batches through pad_stack and batched attention.

The serving path batches requests whose instances have different worker
and task counts (varying S, W), so every ragged set rides through
``pad_stack`` + ``key_padding_mask``.  The contract under test: padding
is *invisible* — each row of a padded batched forward matches the
un-padded serial forward on that row alone, and garbage in the padded
tail can never leak into valid positions.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import MultiHeadAttention, PointerAttention
from repro.nn.ops import pad_stack

LENGTHS = [3, 7, 1, 5]          # genuinely ragged set sizes
D_MODEL = 16


def _ragged(rng, lengths, *trailing):
    return [rng.normal(size=(n, *trailing)) for n in lengths]


class TestPadStack:
    def test_shapes_mask_and_values(self):
        rng = np.random.default_rng(0)
        arrays = _ragged(rng, LENGTHS, 4)
        batch, mask = pad_stack(arrays)
        assert batch.shape == (len(LENGTHS), max(LENGTHS), 4)
        assert mask.shape == (len(LENGTHS), max(LENGTHS))
        for i, arr in enumerate(arrays):
            n = arr.shape[0]
            np.testing.assert_array_equal(batch[i, :n], arr)
            assert not mask[i, :n].any()       # valid prefix unmasked
            assert mask[i, n:].all()           # padded tail masked
            assert (batch[i, n:] == 0.0).all()

    def test_pad_value(self):
        batch, _ = pad_stack([np.ones((1, 2)), np.ones((3, 2))],
                             pad_value=-9.0)
        assert (batch[0, 1:] == -9.0).all()

    def test_zero_length_row(self):
        batch, mask = pad_stack([np.zeros((0, 3)), np.ones((2, 3))])
        assert batch.shape == (2, 2, 3)
        assert mask[0].all()
        assert not mask[1].any()

    def test_empty_input(self):
        batch, mask = pad_stack([])
        assert batch.shape == (0, 0)
        assert mask.shape == (0, 0)

    def test_mismatched_trailing_dims_is_a_clear_error(self):
        with pytest.raises(ValueError, match="trailing dimensions"):
            pad_stack([np.zeros((2, 3)), np.zeros((4, 5))])
        with pytest.raises(ValueError, match="array 1"):
            pad_stack([np.zeros((2, 3)), np.zeros((2,))])

    def test_non_float64_inputs_are_converted(self):
        batch, _ = pad_stack([np.arange(3, dtype=np.int32).reshape(3, 1)])
        assert batch.dtype == np.float64
        np.testing.assert_array_equal(batch[0, :, 0], [0.0, 1.0, 2.0])


class TestBatchedMultiHeadAttention:
    def test_padded_rows_match_serial_forward(self, nn_backend):
        """Each row of the padded batched self-attention equals the
        un-padded serial forward on that row's set alone."""
        rng = np.random.default_rng(1)
        mha = MultiHeadAttention(D_MODEL, num_heads=4,
                                 rng=np.random.default_rng(2))
        sets = _ragged(rng, LENGTHS, D_MODEL)
        batch, mask = pad_stack(sets)

        with nn.no_grad():
            batched = mha(batch, key_padding_mask=mask).data
            for i, row in enumerate(sets):
                serial = mha(row).data
                np.testing.assert_allclose(batched[i, :row.shape[0]], serial,
                                           rtol=1e-12, atol=1e-12)

    def test_padding_tail_cannot_leak(self, nn_backend):
        """Rewriting the padded tail with garbage leaves every valid
        output position untouched."""
        rng = np.random.default_rng(3)
        mha = MultiHeadAttention(D_MODEL, num_heads=2,
                                 rng=np.random.default_rng(4))
        sets = _ragged(rng, LENGTHS, D_MODEL)
        batch, mask = pad_stack(sets)
        poisoned = batch.copy()
        poisoned[mask] = 1e6

        with nn.no_grad():
            clean = mha(batch, key_padding_mask=mask).data
            dirty = mha(poisoned, key_padding_mask=mask).data
        for i, n in enumerate(LENGTHS):
            np.testing.assert_allclose(dirty[i, :n], clean[i, :n],
                                       rtol=1e-12, atol=1e-12)

    def test_cross_attention_with_ragged_keys(self, nn_backend):
        """Fixed-size queries attending over ragged key sets (the
        worker-over-tasks pattern) match per-row serial attention."""
        rng = np.random.default_rng(5)
        mha = MultiHeadAttention(D_MODEL, num_heads=4,
                                 rng=np.random.default_rng(6))
        queries = rng.normal(size=(len(LENGTHS), 2, D_MODEL))
        key_sets = _ragged(rng, LENGTHS, D_MODEL)
        keys, mask = pad_stack(key_sets)

        with nn.no_grad():
            batched = mha(queries, keys, key_padding_mask=mask).data
            for i, key_set in enumerate(key_sets):
                serial = mha(queries[i], key_set).data
                np.testing.assert_allclose(batched[i], serial,
                                           rtol=1e-12, atol=1e-12)


class TestBatchedPointerAttention:
    def test_batched_logits_match_serial(self, nn_backend):
        rng = np.random.default_rng(7)
        pointer = PointerAttention(d_query=D_MODEL, d_key_in=D_MODEL,
                                   rng=np.random.default_rng(8))
        queries = rng.normal(size=(len(LENGTHS), D_MODEL))
        key_sets = _ragged(rng, LENGTHS, D_MODEL)
        keys, mask = pad_stack(key_sets)

        with nn.no_grad():
            batched = pointer(queries, keys, mask=mask).data
            for i, key_set in enumerate(key_sets):
                n = key_set.shape[0]
                serial = pointer(queries[i], key_set).data
                np.testing.assert_allclose(batched[i, :n], serial,
                                           rtol=1e-12, atol=1e-12)
                # Padded candidates are hard-masked out of the softmax
                # (the ops-layer NEG_INF sentinel, not IEEE -inf).
                from repro.nn.ops import NEG_INF
                assert np.all(batched[i, n:] == NEG_INF)

    def test_precomputed_path_matches_forward_on_ragged_batch(
            self, nn_backend):
        """The static-key fast path agrees with the direct forward on a
        padded heterogeneous batch."""
        rng = np.random.default_rng(9)
        pointer = PointerAttention(d_query=D_MODEL, d_key_in=D_MODEL,
                                   rng=np.random.default_rng(10))
        queries = rng.normal(size=(len(LENGTHS), D_MODEL))
        key_sets = _ragged(rng, LENGTHS, D_MODEL)
        keys, mask = pad_stack(key_sets)

        with nn.no_grad():
            want = pointer(queries, keys, mask=mask).data
            projected = pointer.precompute_keys(keys)
            got = pointer.forward_precomputed(queries, projected,
                                              mask=mask).data
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)
