"""FLOP/byte cost models and their agreement with recorded profiles."""

import numpy as np
import pytest

from repro import nn
from repro.nn import flops, ops
from repro.obs.profile import OpProfiler, profiling


class TestFlopCount:
    def test_matmul_matrix_matrix(self):
        assert flops.flop_count("matmul", [(8, 16), (16, 4)], (8, 4)) \
            == 2 * 8 * 4 * 16

    def test_matmul_batched(self):
        assert flops.flop_count("matmul", [(2, 3, 8, 16), (2, 3, 16, 4)],
                                (2, 3, 8, 4)) == 2 * 2 * 3 * 8 * 4 * 16

    def test_matmul_vector_vector(self):
        assert flops.flop_count("matmul", [(16,), (16,)], ()) == 2 * 16

    def test_elementwise_uses_output_elements(self):
        assert flops.flop_count("add", [(4, 4), (4,)], (4, 4)) == 16

    def test_reduction_uses_input_elements(self):
        assert flops.flop_count("sum", [(10, 10)], ()) == 100

    def test_shape_ops_are_free(self):
        assert flops.flop_count("reshape", [(6, 6)], (36,)) == 0
        assert flops.flop_count("transpose", [(6, 6)], (6, 6)) == 0

    def test_byte_count_is_float64_traffic(self):
        assert flops.byte_count([(4, 4), (4, 4)], (4, 4)) == 8 * 48

    def test_backward_charged_at_factor(self):
        a = nn.Tensor(np.ones((8, 16)), requires_grad=True)
        b = nn.Tensor(np.ones((16, 4)), requires_grad=True)
        out = ops.matmul(a, b)
        bwd_flops, _ = flops.estimate_backward("matmul", out)
        fwd = flops.flop_count("matmul", [(8, 16), (16, 4)], (8, 4))
        assert bwd_flops == flops.BACKWARD_FACTOR * fwd


class TestClosedFormAgreement:
    """Profiler-recorded matmul FLOPs match the layer-level closed forms.

    These reconcile the *reference* op compositions (``matmul`` entries
    in the profile), so they pin the reference backend regardless of
    ``REPRO_NN_BACKEND``; the fused backend's ``fused.*`` entries are
    reconciled against the same closed forms in ``test_backend.py``.
    """

    @pytest.fixture(autouse=True)
    def _reference_backend(self):
        with nn.use_backend("reference"):
            yield

    def _recorded_matmul_flops(self, run) -> int:
        profiler = OpProfiler()
        with profiling(profiler=profiler):
            run()
        return profiler.ops["matmul"].flops

    def test_linear(self):
        rng = np.random.default_rng(0)
        layer = nn.Linear(16, 4, bias=False, rng=rng)
        x = nn.Tensor(rng.normal(size=(8, 16)))
        recorded = self._recorded_matmul_flops(lambda: layer(x))
        assert recorded == layer.forward_flops(8)

    def test_linear_with_bias_includes_add(self):
        rng = np.random.default_rng(0)
        layer = nn.Linear(16, 4, rng=rng)
        x = nn.Tensor(rng.normal(size=(8, 16)))
        profiler = OpProfiler()
        with profiling(profiler=profiler):
            layer(x)
        recorded = profiler.ops["matmul"].flops + profiler.ops["add"].flops
        assert recorded == layer.forward_flops(8)

    def test_multi_head_attention_within_one_percent(self):
        rng = np.random.default_rng(1)
        mha = nn.MultiHeadAttention(32, 4, rng=rng)
        x = nn.Tensor(rng.normal(size=(10, 32)))
        recorded = self._recorded_matmul_flops(lambda: mha(x))
        expected = mha.forward_flops(10, matmul_only=True)
        assert abs(recorded - expected) <= 0.01 * expected

    def test_batched_multi_head_attention(self):
        rng = np.random.default_rng(2)
        mha = nn.MultiHeadAttention(32, 4, rng=rng)
        x = nn.Tensor(rng.normal(size=(3, 10, 32)))
        recorded = self._recorded_matmul_flops(lambda: mha(x))
        expected = mha.forward_flops(10, batch=3, matmul_only=True)
        assert abs(recorded - expected) <= 0.01 * expected

    def test_pointer_attention(self):
        rng = np.random.default_rng(3)
        pointer = nn.PointerAttention(12, 16, rng=rng)
        query = nn.Tensor(rng.normal(size=(12,)))
        keys = nn.Tensor(rng.normal(size=(7, 16)))
        recorded = self._recorded_matmul_flops(lambda: pointer(query, keys))
        expected = pointer.forward_flops(7, 12, 16, matmul_only=True)
        assert abs(recorded - expected) <= 0.01 * max(expected, 1)

    def test_mha_flops_helper_matches_module(self):
        rng = np.random.default_rng(4)
        mha = nn.MultiHeadAttention(32, 4, rng=rng)
        assert mha.forward_flops(10) == flops.mha_flops(1, 10, 32, 4)
