"""Tests for optimizers and gradient clipping."""

import numpy as np
import pytest

from repro import nn
from repro.nn.optim import clip_grad_norm


def quadratic_loss(param: nn.Tensor) -> nn.Tensor:
    # Minimum at param = 3.
    return ((param - 3.0) ** 2.0).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = nn.Parameter(np.zeros(3))
        optimizer = nn.SGD([p], lr=0.1)
        for _ in range(100):
            loss = quadratic_loss(p)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        histories = {}
        for momentum in (0.0, 0.9):
            p = nn.Parameter(np.zeros(1))
            optimizer = nn.SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                loss = quadratic_loss(p)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
            histories[momentum] = abs(float(p.data[0]) - 3.0)
        assert histories[0.9] < histories[0.0]

    def test_skips_params_without_grad(self):
        p = nn.Parameter(np.ones(2))
        optimizer = nn.SGD([p], lr=0.5)
        optimizer.step()  # no backward -> no grad -> no movement
        np.testing.assert_allclose(p.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = nn.Parameter(np.zeros(3))
        optimizer = nn.Adam([p], lr=0.1)
        for _ in range(200):
            loss = quadratic_loss(p)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-2)

    def test_first_step_magnitude_equals_lr(self):
        # With bias correction the first Adam step is ~lr regardless of grad scale.
        p = nn.Parameter(np.array([0.0]))
        optimizer = nn.Adam([p], lr=0.1)
        loss = (p * 1000.0).sum()
        loss.backward()
        optimizer.step()
        assert abs(abs(float(p.data[0])) - 0.1) < 1e-6

    def test_zero_grad_resets(self):
        p = nn.Parameter(np.zeros(2))
        optimizer = nn.Adam([p])
        quadratic_loss(p).backward()
        optimizer.zero_grad()
        assert p.grad is None


class TestAdamStateDict:
    def test_roundtrip_continues_identically(self):
        def run(restore_at=None, saved=None):
            p = nn.Parameter(np.zeros(2))
            optimizer = nn.Adam([p], lr=0.05)
            for i in range(20):
                if restore_at is not None and i == restore_at:
                    optimizer.load_state_dict(saved["opt"])
                    p.data = saved["param"].copy()
                loss = quadratic_loss(p)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                if restore_at is None and saved is not None and i == 9:
                    saved["opt"] = optimizer.state_dict()
                    saved["param"] = p.data.copy()
            return p.data.copy()

        saved = {}
        full = run(saved=saved)
        resumed = run(restore_at=10, saved=saved)
        np.testing.assert_allclose(full, resumed)

    def test_mismatched_state_rejected(self):
        a = nn.Adam([nn.Parameter(np.zeros(2))])
        b = nn.Adam([nn.Parameter(np.zeros(2)), nn.Parameter(np.zeros(3))])
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = nn.Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])  # norm 0.5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_clips_above_threshold(self):
        p = nn.Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm 5
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_handles_empty_grads(self):
        p = nn.Parameter(np.zeros(2))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_global_norm_over_multiple_params(self):
        a = nn.Parameter(np.zeros(1))
        b = nn.Parameter(np.zeros(1))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        norm = clip_grad_norm([a, b], max_norm=10.0)
        assert norm == pytest.approx(5.0)


class TestInPlaceBitIdentity:
    """The preallocated-buffer updates must replay the expression forms
    bit-for-bit: every float after N steps is exactly equal, not close."""

    @staticmethod
    def _grads(rng, shapes):
        return [rng.standard_normal(shape) for shape in shapes]

    def test_sgd_matches_expression_form(self):
        rng = np.random.default_rng(3)
        shapes = [(4, 3), (7,)]
        params = [nn.Parameter(rng.standard_normal(s)) for s in shapes]
        ref = [p.data.copy() for p in params]
        optimizer = nn.SGD(params, lr=0.05)
        for _ in range(25):
            grads = self._grads(rng, shapes)
            for p, g in zip(params, grads):
                p.grad = g
            optimizer.step()
            for k, g in enumerate(grads):
                ref[k] = ref[k] - g * optimizer.lr
        for p, r in zip(params, ref):
            assert (p.data == r).all()

    def test_sgd_momentum_matches_expression_form(self):
        rng = np.random.default_rng(4)
        shapes = [(5, 2)]
        params = [nn.Parameter(rng.standard_normal(s)) for s in shapes]
        ref = [p.data.copy() for p in params]
        vel = [np.zeros(s) for s in shapes]
        optimizer = nn.SGD(params, lr=0.05, momentum=0.9)
        for _ in range(25):
            grads = self._grads(rng, shapes)
            for p, g in zip(params, grads):
                p.grad = g
            optimizer.step()
            for k, g in enumerate(grads):
                vel[k] = vel[k] * optimizer.momentum + g
                ref[k] = ref[k] - vel[k] * optimizer.lr
        for p, r in zip(params, ref):
            assert (p.data == r).all()

    def test_adam_matches_expression_form(self):
        rng = np.random.default_rng(5)
        shapes = [(6, 4), (3,)]
        params = [nn.Parameter(rng.standard_normal(s)) for s in shapes]
        ref = [p.data.copy() for p in params]
        m = [np.zeros(s) for s in shapes]
        v = [np.zeros(s) for s in shapes]
        optimizer = nn.Adam(params, lr=1e-3)
        beta1, beta2, eps = optimizer.beta1, optimizer.beta2, optimizer.eps
        for step in range(1, 31):
            grads = self._grads(rng, shapes)
            for p, g in zip(params, grads):
                p.grad = g
            optimizer.step()
            bias1 = 1.0 - beta1 ** step
            bias2 = 1.0 - beta2 ** step
            for k, g in enumerate(grads):
                m[k] = beta1 * m[k] + (1.0 - beta1) * g
                v[k] = beta2 * v[k] + ((1.0 - beta2) * g) * g
                ref[k] = ref[k] - (m[k] / bias1 * optimizer.lr) / (
                    np.sqrt(v[k] / bias2) + eps)
        for p, r in zip(params, ref):
            assert (p.data == r).all()

    def test_step_reuses_buffers(self):
        params = [nn.Parameter(np.ones((8, 8)))]
        adam = nn.Adam(params, lr=1e-3)
        sgd = nn.SGD([nn.Parameter(np.ones(4))], lr=0.1)
        num, den, buf = adam._num[0], adam._den[0], sgd._buf[0]
        for _ in range(3):
            params[0].grad = np.full((8, 8), 0.5)
            adam.step()
            sgd.parameters[0].grad = np.full(4, 0.25)
            sgd.step()
        assert adam._num[0] is num
        assert adam._den[0] is den
        assert sgd._buf[0] is buf

    def test_adam_state_dict_roundtrip_after_inplace_steps(self):
        rng = np.random.default_rng(6)
        params = [nn.Parameter(rng.standard_normal((3, 3)))]
        optimizer = nn.Adam(params, lr=1e-3)
        for _ in range(5):
            params[0].grad = rng.standard_normal((3, 3))
            optimizer.step()
        state = optimizer.state_dict()
        # Saved moments are copies: later in-place steps must not mutate them.
        snapshot = [m.copy() for m in state["m"]]
        params[0].grad = rng.standard_normal((3, 3))
        optimizer.step()
        assert all((a == b).all() for a, b in zip(state["m"], snapshot))
        # A twin restored from the snapshot resumes at the saved step count.
        twin = nn.Adam([nn.Parameter(params[0].data.copy())], lr=1e-3)
        twin.load_state_dict(state)
        assert twin._step_count == 5
        twin.parameters[0].grad = rng.standard_normal((3, 3))
        twin.step()
        assert twin._step_count == 6
