"""Tests for attention modules: MHA, Transformer encoder, pointer attention."""

import numpy as np
import pytest

from repro import nn
from repro.nn import ops
from repro.nn.attention import scaled_dot_product_attention

#: Every test runs under both numpy backends (reference object
#: graph and fused executor); forwards are bit-identical by
#: contract, so shared assertions need no tolerance changes.
pytestmark = pytest.mark.usefixtures("nn_backend")


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestScaledDotProductAttention:
    def test_output_shape(self, rng):
        q = nn.Tensor(rng.normal(size=(2, 5, 8)))
        k = nn.Tensor(rng.normal(size=(2, 7, 8)))
        v = nn.Tensor(rng.normal(size=(2, 7, 8)))
        out = scaled_dot_product_attention(q, k, v)
        assert out.shape == (2, 5, 8)

    def test_uniform_attention_averages_values(self):
        # Zero queries/keys -> uniform weights -> output = mean of values.
        q = nn.Tensor(np.zeros((1, 2, 4)))
        k = nn.Tensor(np.zeros((1, 3, 4)))
        v = nn.Tensor(np.arange(12.0).reshape(1, 3, 4))
        out = scaled_dot_product_attention(q, k, v)
        np.testing.assert_allclose(out.data[0, 0], v.data[0].mean(axis=0))

    def test_mask_excludes_positions(self, rng):
        q = nn.Tensor(rng.normal(size=(1, 1, 4)))
        k = nn.Tensor(rng.normal(size=(1, 3, 4)))
        v = nn.Tensor(np.array([[[1.0] * 4, [2.0] * 4, [3.0] * 4]]))
        mask = np.array([[[False, True, True]]])
        out = scaled_dot_product_attention(q, k, v, mask=mask)
        np.testing.assert_allclose(out.data[0, 0], [1.0] * 4, atol=1e-6)


class TestMultiHeadAttention:
    def test_requires_divisible_heads(self, rng):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(10, 3, rng=rng)

    def test_self_attention_shape(self, rng):
        mha = nn.MultiHeadAttention(16, 4, rng=rng)
        out = mha(nn.Tensor(rng.normal(size=(6, 16))))
        assert out.shape == (6, 16)

    def test_cross_attention_shape(self, rng):
        mha = nn.MultiHeadAttention(16, 4, rng=rng)
        q = nn.Tensor(rng.normal(size=(2, 16)))
        kv = nn.Tensor(rng.normal(size=(9, 16)))
        out = mha(q, kv)
        assert out.shape == (2, 16)

    def test_gradients_reach_all_projections(self, rng):
        mha = nn.MultiHeadAttention(8, 2, rng=rng)
        out = mha(nn.Tensor(rng.normal(size=(4, 8))))
        ops.sum(out).backward()
        for name, param in mha.named_parameters():
            assert param.grad is not None, f"{name} got no gradient"

    def test_permutation_equivariance(self, rng):
        # Self-attention over a set commutes with permuting the rows.
        mha = nn.MultiHeadAttention(8, 2, rng=rng)
        x = rng.normal(size=(5, 8))
        perm = rng.permutation(5)
        out = mha(nn.Tensor(x)).data
        out_perm = mha(nn.Tensor(x[perm])).data
        np.testing.assert_allclose(out[perm], out_perm, atol=1e-10)

    def test_batched_matches_per_sample(self, rng):
        # A (B, n, d) forward must equal B separate (n, d) forwards.
        mha = nn.MultiHeadAttention(8, 2, rng=rng)
        batch = rng.normal(size=(3, 5, 8))
        batched = mha(nn.Tensor(batch)).data
        for b in range(3):
            single = mha(nn.Tensor(batch[b])).data
            np.testing.assert_allclose(batched[b], single, atol=1e-10)

    def test_batched_gradients_flow(self, rng):
        mha = nn.MultiHeadAttention(8, 2, rng=rng)
        x = nn.Tensor(rng.normal(size=(2, 4, 8)), requires_grad=True)
        ops.sum(mha(x)).backward()
        assert x.grad is not None
        assert np.any(x.grad != 0)


class TestTransformerEncoder:
    def test_stack_depth(self, rng):
        enc = nn.TransformerEncoder(8, 2, 3, rng=rng)
        assert len(enc.layers) == 3

    def test_output_shape(self, rng):
        enc = nn.TransformerEncoder(8, 2, 2, rng=rng)
        out = enc(nn.Tensor(rng.normal(size=(5, 8))))
        assert out.shape == (5, 8)

    def test_permutation_equivariance(self, rng):
        enc = nn.TransformerEncoder(8, 2, 2, rng=rng)
        x = rng.normal(size=(6, 8))
        perm = rng.permutation(6)
        np.testing.assert_allclose(
            enc(nn.Tensor(x)).data[perm], enc(nn.Tensor(x[perm])).data, atol=1e-9)

    def test_single_element_set(self, rng):
        enc = nn.TransformerEncoder(8, 2, 2, rng=rng)
        out = enc(nn.Tensor(rng.normal(size=(1, 8))))
        assert out.shape == (1, 8)
        assert np.all(np.isfinite(out.data))

    def test_batched_matches_per_sample(self, rng):
        enc = nn.TransformerEncoder(8, 2, 2, rng=rng)
        batch = rng.normal(size=(3, 6, 8))
        batched = enc(nn.Tensor(batch)).data
        for b in range(3):
            single = enc(nn.Tensor(batch[b])).data
            np.testing.assert_allclose(batched[b], single, atol=1e-9)

    def test_trainable_end_to_end(self, rng):
        enc = nn.TransformerEncoder(8, 2, 1, rng=rng)
        head = nn.Linear(8, 1, rng=rng)
        params = enc.parameters() + head.parameters()
        optimizer = nn.Adam(params, lr=1e-3)
        x = nn.Tensor(rng.normal(size=(5, 8)))
        target = nn.Tensor(rng.normal(size=(5, 1)))
        losses = []
        for _ in range(60):
            loss = ((head(enc(x)) - target) ** 2.0).mean()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]


class TestPointerAttention:
    def test_logits_clipped(self, rng):
        ptr = nn.PointerAttention(8, 8, clip=10.0, rng=rng)
        q = nn.Tensor(rng.normal(size=8) * 100)
        keys = nn.Tensor(rng.normal(size=(6, 8)) * 100)
        logits = ptr(q, keys)
        assert np.all(np.abs(logits.data) <= 10.0 + 1e-9)

    def test_mask_sets_neg_inf(self, rng):
        ptr = nn.PointerAttention(8, 8, rng=rng)
        q = nn.Tensor(rng.normal(size=8))
        keys = nn.Tensor(rng.normal(size=(4, 8)))
        mask = np.array([True, False, True, False])
        logits = ptr(q, keys, mask=mask)
        assert logits.data[0] < -1e8
        assert logits.data[2] < -1e8
        assert abs(logits.data[1]) <= 10.0

    def test_masked_softmax_zero_probability(self, rng):
        ptr = nn.PointerAttention(8, 8, rng=rng)
        q = nn.Tensor(rng.normal(size=8))
        keys = nn.Tensor(rng.normal(size=(4, 8)))
        mask = np.array([True, False, False, False])
        probs = ops.softmax(ptr(q, keys, mask=mask)).data
        assert probs[0] == pytest.approx(0.0, abs=1e-12)
        assert probs.sum() == pytest.approx(1.0)

    def test_different_key_input_dim(self, rng):
        ptr = nn.PointerAttention(12, 10, d_key=8, rng=rng)
        logits = ptr(nn.Tensor(rng.normal(size=12)),
                     nn.Tensor(rng.normal(size=(3, 10))))
        assert logits.shape == (3,)

    def test_gradient_flow(self, rng):
        ptr = nn.PointerAttention(8, 8, rng=rng)
        q = nn.Tensor(rng.normal(size=8), requires_grad=True)
        keys = nn.Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        logp = ops.log_softmax(ptr(q, keys))
        logp[1].backward()
        assert q.grad is not None
        assert keys.grad is not None
