"""Shared fixtures for TSPTW solver tests."""

import numpy as np
import pytest

from repro.core import Location, Region, SensingTask, TravelTask, Worker

SPEED = 60.0


@pytest.fixture
def region():
    return Region(2000, 2400)


@pytest.fixture
def simple_worker():
    """Worker with two travel tasks on a straight west-east line."""
    return Worker(
        worker_id=1,
        origin=Location(0, 0),
        destination=Location(1200, 0),
        earliest_departure=0.0,
        latest_arrival=240.0,
        travel_tasks=(
            TravelTask(10, Location(400, 0), 10.0),
            TravelTask(11, Location(800, 0), 10.0),
        ),
    )


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def random_worker(rng, region, num_travel=3, time_budget=240.0):
    def loc():
        return Location(rng.uniform(0, region.width),
                        rng.uniform(0, region.height))
    travel = tuple(TravelTask(i, loc(), 10.0) for i in range(num_travel))
    return Worker(0, loc(), loc(), 0.0, time_budget, travel)


def random_sensing(rng, region, count, time_span=240.0, window=60.0,
                   start_id=100):
    tasks = []
    slots = int(time_span // window)
    for k in range(count):
        slot = int(rng.integers(0, slots))
        tasks.append(SensingTask(
            start_id + k,
            Location(rng.uniform(0, region.width), rng.uniform(0, region.height)),
            slot * window, (slot + 1) * window, 5.0))
    return tasks
