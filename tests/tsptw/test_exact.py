"""Tests for the exact bitmask-DP TSPTW solver."""

import pytest

from repro.core import Location, SensingTask, TravelTask, Worker
from repro.tsptw import ExactDPSolver

from .conftest import SPEED


@pytest.fixture
def solver():
    return ExactDPSolver(speed=SPEED)


class TestExactDPSolver:
    def test_empty_task_set(self, solver, simple_worker):
        result = solver.plan(simple_worker, [])
        assert result.feasible
        # Straight line 1200m = 20 min + 2x10min service.
        assert result.route_travel_time == pytest.approx(40.0)

    def test_base_route(self, solver, simple_worker):
        result = solver.base_route(simple_worker)
        assert result.feasible
        assert result.route.covers_all_travel_tasks()

    def test_optimal_order_on_line(self, solver, simple_worker):
        # Tasks on a straight line: optimal order is west->east.
        result = solver.plan(simple_worker, [])
        ids = [t.task_id for t in result.route.tasks]
        assert ids == [10, 11]

    def test_respects_time_window_order(self, solver):
        # Two sensing tasks equidistant; windows force the far one first.
        worker = Worker(1, Location(0, 0), Location(0, 0), 0.0, 240.0, ())
        early_far = SensingTask(1, Location(600, 0), 0.0, 30.0, 5.0)
        late_near = SensingTask(2, Location(300, 0), 100.0, 240.0, 5.0)
        result = solver.plan(worker, [early_far, late_near])
        assert result.feasible
        assert [t.task_id for t in result.route.tasks] == [1, 2]

    def test_infeasible_when_windows_conflict(self, solver):
        worker = Worker(1, Location(0, 0), Location(0, 0), 0.0, 240.0, ())
        # Two tasks far apart, both only completable in the first 12 min.
        a = SensingTask(1, Location(600, 0), 0.0, 12.0, 1.0)
        b = SensingTask(2, Location(0, 600), 0.0, 12.0, 1.0)
        result = solver.plan(worker, [a, b])
        assert not result.feasible

    def test_infeasible_when_budget_too_small(self, solver):
        worker = Worker(1, Location(0, 0), Location(1200, 0), 0.0, 19.0, ())
        result = solver.plan(worker, [])
        assert not result.feasible

    def test_waiting_included_in_rtt(self, solver):
        worker = Worker(1, Location(0, 0), Location(600, 0), 0.0, 240.0, ())
        sensing = SensingTask(1, Location(300, 0), 60.0, 120.0, 5.0)
        result = solver.plan(worker, [sensing])
        assert result.feasible
        # 5 min to task, wait until 60, sense 5, 5 min to dest = 70 total.
        assert result.route_travel_time == pytest.approx(70.0)

    def test_max_tasks_guard(self, simple_worker):
        solver = ExactDPSolver(speed=SPEED, max_tasks=2)
        extra = SensingTask(1, Location(100, 0), 0.0, 240.0, 5.0)
        with pytest.raises(ValueError):
            solver.plan(simple_worker, [extra])  # 2 travel + 1 sensing = 3

    def test_optimal_beats_or_matches_any_permutation(self, solver, rng, region):
        from itertools import permutations

        from repro.core import simulate_route

        from .conftest import random_sensing, random_worker

        for _ in range(5):
            worker = random_worker(rng, region, num_travel=2, time_budget=400.0)
            sensing = random_sensing(rng, region, 2, window=200.0,
                                     time_span=400.0)
            tasks = list(worker.travel_tasks) + sensing
            result = solver.plan(worker, sensing)
            best_brute = None
            for perm in permutations(tasks):
                timing = simulate_route(worker, list(perm), speed=SPEED)
                if timing.feasible:
                    rtt = timing.route_travel_time
                    best_brute = rtt if best_brute is None else min(best_brute, rtt)
            if best_brute is None:
                assert not result.feasible
            else:
                assert result.feasible
                assert result.route_travel_time == pytest.approx(best_brute)
