"""Randomized parity: vectorized route kernels vs the object path.

Each case draws hundreds of random configurations and asserts *exact*
(bit-level) float equality — the kernels replay the object path's
IEEE-754 operation sequence rather than approximating it, so `==` on the
resulting floats is the contract, not `pytest.approx`.

Half the configurations bind a :class:`PackedInstance` (matrix-backed
distances), half run unbound (per-pair ``math.hypot`` fallback), so both
kernel distance providers are exercised.
"""

from types import SimpleNamespace

import numpy as np

from repro.core import PackedInstance, Region, simulate_route
from repro.tsptw import InsertionSolver, cheapest_insertion_position
from repro.tsptw.kernels import (
    cheapest_insertion_packed,
    nearest_neighbor_order_packed,
    pack_route,
    simulate_route_packed,
    sweep_insertions,
    timing_from_pack,
)
from repro.tsptw.nearest import nearest_neighbor_order

from .conftest import SPEED, random_sensing, random_worker

N_CONFIGS = 200


def _scenario(seed, max_travel=4, max_sensing=8):
    """Random worker + sensing pool; even seeds get a packed instance."""
    rng = np.random.default_rng(seed)
    region = Region(2000, 2400)
    tight = rng.random() < 0.3
    budget = float(rng.uniform(50, 90) if tight else rng.uniform(150, 320))
    worker = random_worker(rng, region,
                           num_travel=int(rng.integers(0, max_travel + 1)),
                           time_budget=budget)
    sensing = random_sensing(rng, region,
                             count=int(rng.integers(1, max_sensing + 1)))
    packed = PackedInstance([worker], sensing) if seed % 2 == 0 else None
    return rng, worker, sensing, packed


def _route_order(rng, worker, sensing):
    """Random-length shuffled mix of travel and sensing tasks."""
    pool = list(worker.travel_tasks) + list(sensing)
    rng.shuffle(pool)
    return pool[:int(rng.integers(0, len(pool) + 1))]


def test_simulate_route_packed_matches_object_path():
    for seed in range(N_CONFIGS):
        rng, worker, sensing, packed = _scenario(seed)
        order = _route_order(rng, worker, sensing)
        ref = simulate_route(worker, order, speed=SPEED)
        pack = pack_route(worker, order, SPEED, packed)

        arrival, start, finish, final, feasible, violated_at = \
            simulate_route_packed(pack)
        assert feasible == ref.feasible
        assert violated_at == ref.violated_at
        assert final == ref.arrival_at_destination

        got = timing_from_pack(pack)
        assert got.departure == ref.departure
        assert got.arrival_at_destination == ref.arrival_at_destination
        assert got.route_travel_time == ref.route_travel_time
        assert got.feasible == ref.feasible
        assert got.violated_at == ref.violated_at
        assert len(got.stops) == len(ref.stops)
        for mine, theirs in zip(got.stops, ref.stops):
            assert mine.task is theirs.task
            assert mine.arrival == theirs.arrival
            assert mine.service_start == theirs.service_start
            assert mine.finish == theirs.finish


def test_cheapest_insertion_packed_matches_scan():
    hits = misses = 0
    for seed in range(N_CONFIGS + 60):
        rng, worker, sensing, packed = _scenario(seed)
        new_task = sensing[0]
        base = _route_order(rng, worker, sensing[1:])
        ref = cheapest_insertion_position(worker, base, new_task, SPEED)
        got = cheapest_insertion_packed(
            pack_route(worker, base, SPEED, packed), new_task)
        if ref is None:
            assert got is None
            misses += 1
        else:
            assert got is not None
            assert got[0] == ref[0]  # position: identical tie-breaking
            assert got[1] == ref[1]  # rtt: bit-identical float
            hits += 1
    # The random pool must exercise both verdicts to be meaningful.
    assert hits >= 40
    assert misses >= 40


def test_sweep_insertions_matches_per_task_scans():
    for seed in range(N_CONFIGS):
        rng, worker, sensing, packed = _scenario(seed, max_sensing=12)
        split = int(rng.integers(1, len(sensing) + 1))
        new_tasks, rest = sensing[:split], sensing[split:]
        base = _route_order(rng, worker, rest)
        got = sweep_insertions(pack_route(worker, base, SPEED, packed),
                               new_tasks)
        ref = [cheapest_insertion_position(worker, base, task, SPEED)
               for task in new_tasks]
        assert len(got) == len(ref)
        for mine, theirs in zip(got, ref):
            if theirs is None:
                assert mine is None
            else:
                assert mine is not None
                assert mine[0] == theirs[0]
                assert mine[1] == theirs[1]


def _bound_pair(worker, sensing, bind):
    """(kernel solver, object solver), optionally bound to one instance."""
    on = InsertionSolver(speed=SPEED, use_kernels=True)
    off = InsertionSolver(speed=SPEED, use_kernels=False)
    if bind:
        instance = SimpleNamespace(workers=(worker,),
                                   sensing_tasks=tuple(sensing))
        on.bind_instance(instance)
        off.bind_instance(instance)
    return on, off


def _assert_results_match(mine, theirs):
    assert mine.feasible == theirs.feasible
    if not theirs.feasible:
        # RouteResult.infeasible() carries no route; a kernel miss must too.
        assert (mine.route is None) == (theirs.route is None)
        return
    assert mine.route.tasks == theirs.route.tasks
    if theirs.feasible:
        assert mine.route_travel_time == theirs.route_travel_time
        # Forces _KernelResult's lazy timing — must equal the eager one.
        assert mine.timing.arrival_at_destination == \
            theirs.timing.arrival_at_destination
        assert mine.timing.feasible == theirs.timing.feasible


def test_insertion_solver_kernel_parity():
    for seed in range(N_CONFIGS):
        rng, worker, sensing, _ = _scenario(seed)
        on, off = _bound_pair(worker, sensing, bind=seed % 2 == 0)

        plan_on = on.plan(worker, sensing)
        plan_off = off.plan(worker, sensing)
        _assert_results_match(plan_on, plan_off)

        # Infeasible plans carry no route; fall back to the raw travel
        # order so the sweep is still exercised on hopeless bases.
        base = (list(plan_off.route.tasks) if plan_off.route is not None
                else list(worker.travel_tasks))
        many_on = on.plan_insertions_many(worker, base, sensing)
        many_off = off.plan_insertions_many(worker, base, sensing)
        assert len(many_on) == len(many_off) == len(sensing)
        for task, mine, theirs in zip(sensing, many_on, many_off):
            _assert_results_match(mine, theirs)
            single = off.plan_with_insertion(worker, base, task)
            _assert_results_match(mine, single)


def test_nearest_neighbor_order_packed_parity():
    for seed in range(N_CONFIGS):
        rng, worker, sensing, _ = _scenario(seed)
        packed = PackedInstance([worker], sensing)
        tasks = list(worker.travel_tasks) + list(sensing)
        rng.shuffle(tasks)
        got = nearest_neighbor_order_packed(worker, tasks, packed)
        assert got is not None
        assert got == nearest_neighbor_order(worker, tasks)


def test_nearest_neighbor_order_packed_unknown_location_returns_none(rng,
                                                                     region):
    worker = random_worker(rng, region)
    known = random_sensing(rng, region, 3)
    stranger = random_sensing(rng, region, 1, start_id=900)
    packed = PackedInstance([worker], known)
    assert nearest_neighbor_order_packed(
        worker, known + stranger, packed) is None
