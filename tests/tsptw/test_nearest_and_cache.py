"""Tests for the Nearest Neighbour solver and the memoising wrapper."""

import pytest

from repro.core import Location, SensingTask, TravelTask, Worker
from repro.tsptw import (
    CachedPlanner,
    InsertionSolver,
    NearestNeighborSolver,
    nearest_neighbor_order,
)

from .conftest import SPEED


class TestNearestNeighborOrder:
    def test_orders_by_proximity(self):
        worker = Worker(1, Location(0, 0), Location(0, 0), 0.0, 240.0, ())
        tasks = [TravelTask(i, Location(x, 0), 0.0)
                 for i, x in [(1, 900), (2, 300), (3, 600)]]
        ordered = nearest_neighbor_order(worker, tasks)
        assert [t.task_id for t in ordered] == [2, 3, 1]

    def test_empty(self):
        worker = Worker(1, Location(0, 0), Location(0, 0), 0.0, 240.0, ())
        assert nearest_neighbor_order(worker, []) == []

    def test_does_not_mutate_input(self):
        worker = Worker(1, Location(0, 0), Location(0, 0), 0.0, 240.0, ())
        tasks = [TravelTask(1, Location(100, 0), 0.0)]
        nearest_neighbor_order(worker, tasks)
        assert len(tasks) == 1


class TestNearestNeighborSolver:
    def test_includes_all_tasks(self, simple_worker):
        solver = NearestNeighborSolver(speed=SPEED)
        sensing = SensingTask(1, Location(100, 100), 0.0, 240.0, 5.0)
        result = solver.plan(simple_worker, [sensing])
        assert len(result.route.tasks) == 3

    def test_may_be_infeasible(self):
        # NN ignores windows; a window-first layout defeats it.
        worker = Worker(1, Location(0, 0), Location(0, 0), 0.0, 240.0, ())
        near_late = SensingTask(1, Location(100, 0), 100.0, 110.0, 5.0)
        far_early = SensingTask(2, Location(600, 0), 0.0, 30.0, 5.0)
        result = NearestNeighborSolver(speed=SPEED).plan(
            worker, [near_late, far_early])
        assert not result.feasible


class TestCachedPlanner:
    @pytest.fixture
    def cached(self):
        return CachedPlanner(InsertionSolver(speed=SPEED))

    def test_hit_on_repeat(self, cached, simple_worker):
        sensing = SensingTask(1, Location(600, 0), 0.0, 240.0, 5.0)
        first = cached.plan(simple_worker, [sensing])
        second = cached.plan(simple_worker, [sensing])
        assert second is first
        assert cached.hits == 1
        assert cached.misses == 1

    def test_key_order_insensitive(self, cached, simple_worker):
        a = SensingTask(1, Location(600, 0), 0.0, 240.0, 5.0)
        b = SensingTask(2, Location(200, 0), 0.0, 240.0, 5.0)
        cached.plan(simple_worker, [a, b])
        cached.plan(simple_worker, [b, a])
        assert cached.hits == 1

    def test_different_workers_not_conflated(self, cached, simple_worker):
        other = Worker(2, Location(0, 0), Location(600, 0), 0.0, 240.0, ())
        cached.plan(simple_worker, [])
        cached.plan(other, [])
        assert cached.misses == 2

    def test_base_route_goes_through_cache(self, cached, simple_worker):
        cached.base_route(simple_worker)
        cached.base_route(simple_worker)
        assert cached.hits == 1

    def test_clear(self, cached, simple_worker):
        cached.plan(simple_worker, [])
        cached.clear()
        assert len(cached) == 0
        assert cached.hits == 0

    def test_speed_mirrors_inner(self):
        inner = InsertionSolver(speed=42.0)
        assert CachedPlanner(inner).speed == 42.0

    def test_stats_snapshot(self, cached, simple_worker):
        sensing = SensingTask(1, Location(600, 0), 0.0, 240.0, 5.0)
        cached.plan(simple_worker, [sensing])
        cached.plan(simple_worker, [sensing])
        stats = cached.stats()
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        assert stats.planner_calls == 1
        assert stats.backend_calls == 1
        assert stats.cache_size == 1
        assert stats.cache_hit_rate == 0.5

    def test_clear_resets_backend_calls(self, cached, simple_worker):
        cached.plan(simple_worker, [])
        cached.clear()
        assert cached.backend_calls == 0
        assert cached.stats().backend_calls == 0


class TestInsertionCacheKey:
    """``plan_with_insertion`` memoisation must be base-order-insensitive.

    The old key used the base tasks' id tuple *in order*, so permutations
    of the same base set — which produce the same optimal insertion from
    a deterministic backend — missed the cache and re-ran the backend.
    """

    @pytest.fixture
    def cached(self):
        return CachedPlanner(InsertionSolver(speed=SPEED))

    def _tasks(self):
        a = SensingTask(1, Location(600, 0), 0.0, 240.0, 5.0)
        b = SensingTask(2, Location(200, 0), 0.0, 240.0, 5.0)
        new = SensingTask(3, Location(400, 0), 0.0, 240.0, 5.0)
        return a, b, new

    def test_permuted_base_set_hits(self, cached, simple_worker):
        a, b, new = self._tasks()
        first = cached.plan_with_insertion(simple_worker, [a, b], new)
        second = cached.plan_with_insertion(simple_worker, [b, a], new)
        assert second is first
        assert cached.hits == 1
        assert cached.misses == 1
        assert cached.backend_calls == 1

    def test_different_new_task_still_misses(self, cached, simple_worker):
        a, b, _ = self._tasks()
        other = SensingTask(4, Location(900, 0), 0.0, 240.0, 5.0)
        cached.plan_with_insertion(simple_worker, [a, b], a)
        cached.plan_with_insertion(simple_worker, [a, b], other)
        assert cached.misses == 2

    def test_different_base_set_still_misses(self, cached, simple_worker):
        a, b, new = self._tasks()
        cached.plan_with_insertion(simple_worker, [a], new)
        cached.plan_with_insertion(simple_worker, [a, b], new)
        assert cached.misses == 2


class TestBackendCallAccounting:
    """``backend_calls`` counts true backend invocations, not logical plans.

    The old ``stats()`` reported ``planner_calls = misses``, overstating
    backend work on the batched path where one ``plan_many`` call serves
    every miss in the request.
    """

    class BatchBackend:
        def __init__(self):
            self.inner = NearestNeighborSolver(speed=SPEED)
            self.speed = self.inner.speed
            self.batch_calls = 0

        def plan(self, worker, sensing_tasks):
            return self.inner.plan(worker, sensing_tasks)

        def base_route(self, worker):
            return self.inner.base_route(worker)

        def plan_many(self, worker, task_sets):
            self.batch_calls += 1
            return [self.inner.plan(worker, tasks) for tasks in task_sets]

    def _task_sets(self, n):
        return [[SensingTask(i, Location(100 * i, 0), 0.0, 240.0, 5.0)]
                for i in range(1, n + 1)]

    def test_batched_misses_count_one_backend_call(self, simple_worker):
        backend = self.BatchBackend()
        cached = CachedPlanner(backend)
        cached.plan_many(simple_worker, self._task_sets(5))
        stats = cached.stats()
        assert stats.cache_misses == 5
        assert stats.planner_calls == 5       # logical plans computed
        assert stats.backend_calls == 1       # one true backend invocation
        assert stats.backend_calls == backend.batch_calls

    def test_fully_cached_batch_adds_no_backend_call(self, simple_worker):
        backend = self.BatchBackend()
        cached = CachedPlanner(backend)
        sets = self._task_sets(3)
        cached.plan_many(simple_worker, sets)
        cached.plan_many(simple_worker, sets)
        assert cached.backend_calls == 1
        assert backend.batch_calls == 1

    def test_unbatched_plan_counts_one_per_miss(self, simple_worker):
        cached = CachedPlanner(InsertionSolver(speed=SPEED))
        for tasks in self._task_sets(3):
            cached.plan(simple_worker, tasks)
        assert cached.backend_calls == 3
        assert cached.stats().backend_calls == 3


class TestCachedPlannerLRU:
    def _tasks(self, n):
        return [SensingTask(i, Location(100 * i, 0), 0.0, 240.0, 5.0)
                for i in range(1, n + 1)]

    def test_bounded_cache_evicts_lru(self, simple_worker):
        cached = CachedPlanner(InsertionSolver(speed=SPEED), max_size=2)
        a, b, c = self._tasks(3)
        cached.plan(simple_worker, [a])
        cached.plan(simple_worker, [b])
        cached.plan(simple_worker, [c])  # evicts [a]
        assert len(cached) == 2
        assert cached.evictions == 1
        cached.plan(simple_worker, [a])  # miss: was evicted
        assert cached.misses == 4

    def test_recently_used_survives(self, simple_worker):
        cached = CachedPlanner(InsertionSolver(speed=SPEED), max_size=2)
        a, b, c = self._tasks(3)
        cached.plan(simple_worker, [a])
        cached.plan(simple_worker, [b])
        cached.plan(simple_worker, [a])  # refresh [a]; [b] is now LRU
        cached.plan(simple_worker, [c])  # evicts [b]
        cached.plan(simple_worker, [a])
        assert cached.hits == 2

    def test_invalid_max_size_rejected(self):
        with pytest.raises(ValueError):
            CachedPlanner(InsertionSolver(speed=SPEED), max_size=0)

    def test_unbounded_by_default(self, simple_worker):
        cached = CachedPlanner(InsertionSolver(speed=SPEED))
        for task in self._tasks(5):
            cached.plan(simple_worker, [task])
        assert len(cached) == 5
        assert cached.evictions == 0


class TestFeatureDetection:
    """The wrapper must mirror the backend's optional-protocol surface.

    The old implementation set ``plan_with_insertion = None`` on the
    instance, which made ``hasattr`` return True for backends without
    insertion support and silently disabled the batched ``plan_many``
    path in the candidate table for wrapped RL backends.
    """

    def test_insertion_exposed_when_backend_has_it(self):
        cached = CachedPlanner(InsertionSolver(speed=SPEED))
        assert getattr(cached, "plan_with_insertion", None) is not None

    def test_insertion_absent_when_backend_lacks_it(self):
        cached = CachedPlanner(NearestNeighborSolver(speed=SPEED))
        assert not hasattr(cached, "plan_with_insertion")
        assert getattr(cached, "plan_with_insertion", None) is None

    def test_plan_many_delegated_and_memoised(self, simple_worker):
        class BatchBackend:
            """Minimal plan_many-only backend (like the GPN solver)."""

            def __init__(self):
                self.inner = NearestNeighborSolver(speed=SPEED)
                self.speed = self.inner.speed
                self.batch_calls = 0

            def plan(self, worker, sensing_tasks):
                return self.inner.plan(worker, sensing_tasks)

            def base_route(self, worker):
                return self.inner.base_route(worker)

            def plan_many(self, worker, task_sets):
                self.batch_calls += 1
                return [self.inner.plan(worker, tasks)
                        for tasks in task_sets]

        backend = BatchBackend()
        cached = CachedPlanner(backend)
        assert getattr(cached, "plan_many", None) is not None
        a = SensingTask(1, Location(600, 0), 0.0, 240.0, 5.0)
        b = SensingTask(2, Location(200, 0), 0.0, 240.0, 5.0)
        first = cached.plan_many(simple_worker, [[a], [b]])
        second = cached.plan_many(simple_worker, [[a], [b]])
        assert backend.batch_calls == 1  # second call fully cached
        assert cached.hits == 2
        assert [r is s for r, s in zip(first, second)] == [True, True]

    def test_plan_many_partial_miss(self, simple_worker):
        class BatchBackend:
            def __init__(self):
                self.inner = NearestNeighborSolver(speed=SPEED)
                self.speed = self.inner.speed
                self.seen_batches = []

            def plan(self, worker, sensing_tasks):
                return self.inner.plan(worker, sensing_tasks)

            def base_route(self, worker):
                return self.inner.base_route(worker)

            def plan_many(self, worker, task_sets):
                self.seen_batches.append(
                    [tuple(t.task_id for t in tasks) for tasks in task_sets])
                return [self.inner.plan(worker, tasks)
                        for tasks in task_sets]

        backend = BatchBackend()
        cached = CachedPlanner(backend)
        a = SensingTask(1, Location(600, 0), 0.0, 240.0, 5.0)
        b = SensingTask(2, Location(200, 0), 0.0, 240.0, 5.0)
        cached.plan_many(simple_worker, [[a]])
        cached.plan_many(simple_worker, [[a], [b]])
        # Only the uncached set reaches the backend on the second call.
        assert backend.seen_batches == [[(1,)], [(2,)]]

    def test_wrapped_batch_backend_uses_batched_table_path(
            self, simple_worker):
        from repro.core import IncentiveModel
        from repro.smore import CandidateTable

        class BatchBackend:
            def __init__(self):
                self.inner = NearestNeighborSolver(speed=SPEED)
                self.speed = self.inner.speed
                self.batch_calls = 0

            def plan(self, worker, sensing_tasks):
                return self.inner.plan(worker, sensing_tasks)

            def base_route(self, worker):
                return self.inner.base_route(worker)

            def plan_many(self, worker, task_sets):
                self.batch_calls += 1
                return [self.inner.plan(worker, tasks)
                        for tasks in task_sets]

        backend = BatchBackend()
        cached = CachedPlanner(backend)
        table = CandidateTable(cached, IncentiveModel(mu=1.0))
        tasks = [SensingTask(1, Location(600, 0), 0.0, 240.0, 5.0),
                 SensingTask(2, Location(200, 0), 0.0, 240.0, 5.0)]
        table.initialize([simple_worker], tasks, budget_rest=1000.0)
        # The batched path fired exactly once for the worker's task sweep;
        # the old None-attribute shadowing forced per-task plan() calls.
        assert backend.batch_calls == 1
