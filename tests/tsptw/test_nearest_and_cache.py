"""Tests for the Nearest Neighbour solver and the memoising wrapper."""

import pytest

from repro.core import Location, SensingTask, TravelTask, Worker
from repro.tsptw import (
    CachedPlanner,
    InsertionSolver,
    NearestNeighborSolver,
    nearest_neighbor_order,
)

from .conftest import SPEED


class TestNearestNeighborOrder:
    def test_orders_by_proximity(self):
        worker = Worker(1, Location(0, 0), Location(0, 0), 0.0, 240.0, ())
        tasks = [TravelTask(i, Location(x, 0), 0.0)
                 for i, x in [(1, 900), (2, 300), (3, 600)]]
        ordered = nearest_neighbor_order(worker, tasks)
        assert [t.task_id for t in ordered] == [2, 3, 1]

    def test_empty(self):
        worker = Worker(1, Location(0, 0), Location(0, 0), 0.0, 240.0, ())
        assert nearest_neighbor_order(worker, []) == []

    def test_does_not_mutate_input(self):
        worker = Worker(1, Location(0, 0), Location(0, 0), 0.0, 240.0, ())
        tasks = [TravelTask(1, Location(100, 0), 0.0)]
        nearest_neighbor_order(worker, tasks)
        assert len(tasks) == 1


class TestNearestNeighborSolver:
    def test_includes_all_tasks(self, simple_worker):
        solver = NearestNeighborSolver(speed=SPEED)
        sensing = SensingTask(1, Location(100, 100), 0.0, 240.0, 5.0)
        result = solver.plan(simple_worker, [sensing])
        assert len(result.route.tasks) == 3

    def test_may_be_infeasible(self):
        # NN ignores windows; a window-first layout defeats it.
        worker = Worker(1, Location(0, 0), Location(0, 0), 0.0, 240.0, ())
        near_late = SensingTask(1, Location(100, 0), 100.0, 110.0, 5.0)
        far_early = SensingTask(2, Location(600, 0), 0.0, 30.0, 5.0)
        result = NearestNeighborSolver(speed=SPEED).plan(
            worker, [near_late, far_early])
        assert not result.feasible


class TestCachedPlanner:
    @pytest.fixture
    def cached(self):
        return CachedPlanner(InsertionSolver(speed=SPEED))

    def test_hit_on_repeat(self, cached, simple_worker):
        sensing = SensingTask(1, Location(600, 0), 0.0, 240.0, 5.0)
        first = cached.plan(simple_worker, [sensing])
        second = cached.plan(simple_worker, [sensing])
        assert second is first
        assert cached.hits == 1
        assert cached.misses == 1

    def test_key_order_insensitive(self, cached, simple_worker):
        a = SensingTask(1, Location(600, 0), 0.0, 240.0, 5.0)
        b = SensingTask(2, Location(200, 0), 0.0, 240.0, 5.0)
        cached.plan(simple_worker, [a, b])
        cached.plan(simple_worker, [b, a])
        assert cached.hits == 1

    def test_different_workers_not_conflated(self, cached, simple_worker):
        other = Worker(2, Location(0, 0), Location(600, 0), 0.0, 240.0, ())
        cached.plan(simple_worker, [])
        cached.plan(other, [])
        assert cached.misses == 2

    def test_base_route_goes_through_cache(self, cached, simple_worker):
        cached.base_route(simple_worker)
        cached.base_route(simple_worker)
        assert cached.hits == 1

    def test_clear(self, cached, simple_worker):
        cached.plan(simple_worker, [])
        cached.clear()
        assert len(cached) == 0
        assert cached.hits == 0

    def test_speed_mirrors_inner(self):
        inner = InsertionSolver(speed=42.0)
        assert CachedPlanner(inner).speed == 42.0
