"""Anchored insertion (``min_position``): scalar/kernel parity and caching.

Dynamic re-planning restricts insertions to positions at or after a
worker's committed mid-route position.  These tests pin the anchored
scan's semantics: positions below the anchor are never chosen, the
vectorized sweep matches the scalar scan bit-for-bit under every anchor,
an anchor past the end of the route yields infeasibility, and the
memoising planner keys anchored plans separately per anchor.
"""

import numpy as np
import pytest

from repro.datasets import InstanceOptions, generate_instances
from repro.tsptw import InsertionSolver
from repro.tsptw.cache import CachedPlanner
from repro.tsptw.insertion import cheapest_insertion_position


def _setup(seed=0, density=0.04):
    instance = generate_instances(
        "delivery", 1, seed=seed,
        options=InstanceOptions(task_density=density, num_workers=3))[0]
    worker = instance.workers[0]
    solver = InsertionSolver(speed=instance.speed)
    base = solver.base_route(worker)
    return instance, worker, solver, base


def test_scalar_scan_respects_anchor():
    instance, worker, solver, base = _setup()
    tasks = list(base.route.tasks)
    candidates = [s for s in instance.sensing_tasks
                  if solver.plan_with_insertion(worker, tasks, s).feasible]
    assert candidates, "setup needs at least one feasible insertion"
    for task in candidates[:10]:
        for anchor in range(len(tasks) + 2):
            found = cheapest_insertion_position(
                worker, tasks, task, instance.speed, min_position=anchor)
            if found is not None:
                assert found[0] >= anchor
        # An anchor past every position leaves nothing to scan.
        assert cheapest_insertion_position(
            worker, tasks, task, instance.speed,
            min_position=len(tasks) + 1) is None


@pytest.mark.parametrize("seed", range(8))
def test_sweep_matches_scalar_under_every_anchor(seed):
    instance, worker, _, _ = _setup(seed=seed)
    on = InsertionSolver(speed=instance.speed, use_kernels=True)
    off = InsertionSolver(speed=instance.speed, use_kernels=False)
    base_tasks = list(on.base_route(worker).route.tasks)
    tasks = list(instance.sensing_tasks)
    for anchor in range(len(base_tasks) + 2):
        swept = on.plan_insertions_many(worker, base_tasks, tasks,
                                        min_position=anchor)
        scanned = off.plan_insertions_many(worker, base_tasks, tasks,
                                           min_position=anchor)
        for task, a, b in zip(tasks, swept, scanned):
            assert a.feasible == b.feasible, (anchor, task.task_id)
            if a.feasible:
                assert a.route_travel_time == b.route_travel_time, \
                    (anchor, task.task_id)
                assert getattr(a, "pos", None) == getattr(b, "pos", None), \
                    (anchor, task.task_id)
                assert a.pos >= anchor


def test_anchor_zero_is_the_unanchored_scan():
    instance, worker, solver, base = _setup(seed=3)
    base_tasks = list(base.route.tasks)
    tasks = list(instance.sensing_tasks)
    free = solver.plan_insertions_many(worker, base_tasks, tasks)
    anchored = solver.plan_insertions_many(worker, base_tasks, tasks,
                                           min_position=0)
    for a, b in zip(free, anchored):
        assert a.feasible == b.feasible
        if a.feasible:
            assert a.route_travel_time == b.route_travel_time


def test_cached_planner_keys_anchors_separately():
    instance, worker, solver, base = _setup(seed=5)
    cached = CachedPlanner(InsertionSolver(speed=instance.speed))
    base_tasks = list(base.route.tasks)
    task = next(s for s in instance.sensing_tasks
                if solver.plan_with_insertion(worker, base_tasks,
                                              s).feasible)
    free = cached.plan_with_insertion(worker, base_tasks, task)
    hits_before = cached.hits
    again = cached.plan_with_insertion(worker, base_tasks, task)
    assert cached.hits == hits_before + 1
    assert again is free
    # A different anchor is a different plan: must miss, may differ.
    anchored = cached.plan_with_insertion(worker, base_tasks, task,
                                          min_position=1)
    assert cached.hits == hits_before + 1
    if anchored.feasible and getattr(anchored, "pos", None) is not None:
        assert anchored.pos >= 1
    # Batched anchored sweeps share the same keyed table.
    misses_before = cached.misses
    results = cached.plan_insertions_many(worker, base_tasks, [task],
                                          min_position=1)
    assert cached.misses == misses_before
    assert results[0] is anchored


def test_anchored_rescan_equals_restricted_argmin():
    """The anchored scan is exactly the argmin over the position subset:
    whenever the unanchored winner sits at/after the anchor, the anchored
    scan returns the identical position and travel time."""
    instance, worker, _, _ = _setup(seed=7)
    solver = InsertionSolver(speed=instance.speed)
    base_tasks = list(solver.base_route(worker).route.tasks)
    checked = 0
    for task in instance.sensing_tasks:
        found = cheapest_insertion_position(
            worker, base_tasks, task, instance.speed)
        if found is None:
            continue
        pos, rtt = found
        for anchor in range(pos + 1):
            pos2, rtt2 = cheapest_insertion_position(
                worker, base_tasks, task, instance.speed,
                min_position=anchor)
            assert pos2 == pos
            assert rtt2 == rtt
            checked += 1
    assert checked > 0
