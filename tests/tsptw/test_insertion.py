"""Tests for the insertion heuristic and its fast position scan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Location, Region, SensingTask, Worker, simulate_route
from repro.tsptw import (
    ExactDPSolver,
    InsertionSolver,
    cheapest_insertion_position,
)

from .conftest import SPEED, random_sensing, random_worker


@pytest.fixture
def solver():
    return InsertionSolver(speed=SPEED)


class TestCheapestInsertionPosition:
    def test_matches_brute_force(self, rng, region):
        """The prefix-reusing scan must agree with full re-simulation."""
        for trial in range(20):
            worker = random_worker(rng, region, num_travel=3, time_budget=300.0)
            base = list(worker.travel_tasks)
            candidate = random_sensing(rng, region, 1, time_span=300.0,
                                       window=75.0)[0]
            fast = cheapest_insertion_position(worker, base, candidate, SPEED)
            brute = None
            for p in range(len(base) + 1):
                timing = simulate_route(worker, base[:p] + [candidate] + base[p:],
                                        speed=SPEED)
                if timing.feasible and (brute is None or
                                        timing.route_travel_time < brute[1]):
                    brute = (p, timing.route_travel_time)
            assert (fast is None) == (brute is None)
            if fast is not None:
                assert fast[0] == brute[0]
                assert fast[1] == pytest.approx(brute[1])

    def test_insert_into_empty_route(self):
        worker = Worker(1, Location(0, 0), Location(600, 0), 0.0, 240.0, ())
        task = SensingTask(1, Location(300, 0), 0.0, 240.0, 5.0)
        found = cheapest_insertion_position(worker, [], task, SPEED)
        assert found == (0, pytest.approx(15.0))

    def test_no_feasible_position(self):
        worker = Worker(1, Location(0, 0), Location(600, 0), 0.0, 20.0, ())
        far = SensingTask(1, Location(0, 2000), 0.0, 20.0, 5.0)
        assert cheapest_insertion_position(worker, [], far, SPEED) is None

    def test_on_route_task_is_free(self):
        worker = Worker(1, Location(0, 0), Location(600, 0), 0.0, 240.0, ())
        on_route = SensingTask(1, Location(300, 0), 0.0, 240.0, 0.0)
        found = cheapest_insertion_position(worker, [], on_route, SPEED)
        assert found[1] == pytest.approx(10.0)  # same as the empty route


class TestInsertionSolver:
    def test_feasible_simple(self, solver, simple_worker):
        sensing = SensingTask(1, Location(600, 0), 0.0, 240.0, 5.0)
        result = solver.plan(simple_worker, [sensing])
        assert result.feasible
        assert result.route.covers_all_travel_tasks()

    def test_never_better_than_exact(self, solver, rng, region):
        exact = ExactDPSolver(speed=SPEED)
        for _ in range(8):
            worker = random_worker(rng, region, num_travel=2, time_budget=400.0)
            sensing = random_sensing(rng, region, 3, time_span=400.0,
                                     window=100.0)
            heur = solver.plan(worker, sensing)
            opt = exact.plan(worker, sensing)
            if heur.feasible:
                # A feasible heuristic result implies the optimum exists and
                # is no worse.
                assert opt.feasible
                assert heur.route_travel_time >= opt.route_travel_time - 1e-6

    def test_or_opt_never_hurts(self, rng, region):
        plain = InsertionSolver(speed=SPEED, improvement_rounds=0)
        improved = InsertionSolver(speed=SPEED, improvement_rounds=3)
        for _ in range(6):
            worker = random_worker(rng, region, num_travel=3, time_budget=400.0)
            sensing = random_sensing(rng, region, 3, time_span=400.0,
                                     window=100.0)
            a = plain.plan(worker, sensing)
            b = improved.plan(worker, sensing)
            if a.feasible and b.feasible:
                assert b.route_travel_time <= a.route_travel_time + 1e-9

    def test_two_opt_never_hurts(self, rng, region):
        plain = InsertionSolver(speed=SPEED)
        polished = InsertionSolver(speed=SPEED, use_two_opt=True)
        for _ in range(6):
            worker = random_worker(rng, region, num_travel=3, time_budget=400.0)
            sensing = random_sensing(rng, region, 3, time_span=400.0,
                                     window=100.0)
            a = plain.plan(worker, sensing)
            b = polished.plan(worker, sensing)
            if a.feasible and b.feasible:
                assert b.route_travel_time <= a.route_travel_time + 1e-9

    def test_two_opt_untangles_crossing(self):
        # Construction order forced by window starts creates a crossing
        # that 2-opt undoes on a windowless suffix.
        worker = Worker(1, Location(0, 0), Location(0, 0), 0.0, 500.0, ())
        a = SensingTask(1, Location(600, 0), 0.0, 500.0, 0.0)
        b = SensingTask(2, Location(0, 600), 0.0, 500.0, 0.0)
        c = SensingTask(3, Location(600, 600), 0.0, 500.0, 0.0)
        solver = InsertionSolver(speed=SPEED, improvement_rounds=0,
                                 use_two_opt=True)
        result = solver.plan(worker, [a, b, c])
        assert result.feasible
        # Optimal loop visits the corner c between a and b (or reverse).
        ids = [t.task_id for t in result.route.tasks]
        assert ids[1] == 3

    def test_empty_plan(self, solver):
        worker = Worker(1, Location(0, 0), Location(600, 0), 0.0, 240.0, ())
        result = solver.plan(worker, [])
        assert result.feasible
        assert result.route_travel_time == pytest.approx(10.0)

    def test_plan_with_insertion_appends_correctly(self, solver, simple_worker):
        base = solver.base_route(simple_worker)
        sensing = SensingTask(1, Location(600, 0), 0.0, 240.0, 5.0)
        result = solver.plan_with_insertion(simple_worker, base.route.tasks,
                                            sensing)
        assert result.feasible
        assert sensing in result.route.tasks
        assert result.route.covers_all_travel_tasks()

    def test_plan_with_insertion_infeasible(self, solver):
        worker = Worker(1, Location(0, 0), Location(600, 0), 0.0, 11.0, ())
        sensing = SensingTask(1, Location(0, 2000), 0.0, 11.0, 5.0)
        result = solver.plan_with_insertion(worker, [], sensing)
        assert not result.feasible

    def test_all_sensing_windows_respected(self, solver, rng, region):
        for _ in range(5):
            worker = random_worker(rng, region, num_travel=2, time_budget=400.0)
            sensing = random_sensing(rng, region, 4, time_span=400.0,
                                     window=100.0)
            result = solver.plan(worker, sensing)
            if not result.feasible:
                continue
            for stop in result.timing.stops:
                task = stop.task
                if isinstance(task, SensingTask):
                    assert task.tw_start - 1e-9 <= stop.service_start
                    assert stop.finish <= task.tw_end + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_feasible_results_are_truly_feasible(self, seed):
        rng = np.random.default_rng(seed)
        region = Region(2000, 2400)
        worker = random_worker(rng, region, num_travel=int(rng.integers(0, 4)),
                               time_budget=float(rng.uniform(60, 400)))
        sensing = random_sensing(rng, region, int(rng.integers(1, 5)),
                                 time_span=240.0, window=60.0)
        result = InsertionSolver(speed=SPEED).plan(worker, sensing)
        if result.feasible:
            timing = result.route.simulate()
            assert timing.feasible
            assert result.route.covers_all_travel_tasks()
            assert timing.arrival_at_destination <= worker.latest_arrival + 1e-6
