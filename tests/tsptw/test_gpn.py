"""Tests for the GPN TSPTW solver and its hierarchical RL training."""

import numpy as np
import pytest

from repro.core import Location, Region, SensingTask, Worker
from repro.tsptw import (
    GPNScale,
    GPNSolver,
    HierarchicalGPN,
    TSPTWTrainer,
    TSPTWTrainingConfig,
    make_default_gpn,
    sample_training_worker,
)

from .conftest import SPEED


@pytest.fixture
def region():
    return Region(2000, 2400)


@pytest.fixture
def model(region):
    return make_default_gpn(region, 240.0, d_model=16, seed=0)


class TestGPNScale:
    def test_node_features_shape(self, region):
        scale = GPNScale(space=2400.0, time=240.0)
        worker, tasks = sample_training_worker(
            np.random.default_rng(0), region, 240.0, 2, 3, 60.0)
        features = scale.node_features(worker, tasks)
        assert features.shape == (5, 6)

    def test_travel_task_flag(self, region):
        scale = GPNScale(space=2400.0, time=240.0)
        worker, tasks = sample_training_worker(
            np.random.default_rng(0), region, 240.0, 2, 3, 60.0)
        features = scale.node_features(worker, tasks)
        assert features[:2, 5].tolist() == [1.0, 1.0]   # travel tasks
        assert features[2:, 5].tolist() == [0.0, 0.0, 0.0]

    def test_normalisation_bounds(self, region):
        scale = GPNScale(space=2400.0, time=240.0)
        worker, tasks = sample_training_worker(
            np.random.default_rng(1), region, 240.0, 2, 4, 60.0)
        features = scale.node_features(worker, tasks)
        assert features.min() >= 0.0
        assert features.max() <= 1.0 + 1e-9

    def test_endpoint_features(self, region):
        scale = GPNScale(space=2400.0, time=240.0)
        worker, _ = sample_training_worker(
            np.random.default_rng(0), region, 240.0, 1, 1, 60.0)
        endpoints = scale.endpoint_features(worker)
        assert endpoints.shape == (2, 3)


class TestDecoding:
    def test_lower_decode_visits_all(self, model, region):
        worker, tasks = sample_training_worker(
            np.random.default_rng(0), region, 240.0, 2, 3, 60.0)
        decoded = model.decode_lower(worker, tasks)
        assert sorted(decoded.order) == list(range(5))

    def test_upper_decode_visits_all(self, model, region):
        worker, tasks = sample_training_worker(
            np.random.default_rng(0), region, 240.0, 2, 3, 60.0)
        decoded = model.decode_upper(worker, tasks)
        assert sorted(decoded.order) == list(range(5))

    def test_greedy_is_deterministic(self, model, region):
        worker, tasks = sample_training_worker(
            np.random.default_rng(0), region, 240.0, 2, 3, 60.0)
        a = model.decode_lower(worker, tasks, greedy=True)
        b = model.decode_lower(worker, tasks, greedy=True)
        assert a.order == b.order

    def test_sampling_uses_rng(self, model, region):
        worker, tasks = sample_training_worker(
            np.random.default_rng(0), region, 240.0, 2, 6, 60.0)
        orders = {
            tuple(model.decode_lower(worker, tasks, greedy=False,
                                     rng=np.random.default_rng(seed)).order)
            for seed in range(8)
        }
        assert len(orders) > 1

    def test_log_prob_is_negative(self, model, region):
        worker, tasks = sample_training_worker(
            np.random.default_rng(0), region, 240.0, 2, 3, 60.0)
        decoded = model.decode_lower(worker, tasks, greedy=False,
                                     rng=np.random.default_rng(1))
        assert decoded.log_prob.item() < 0.0

    def test_satisfied_counts_windows(self, model, region):
        worker, tasks = sample_training_worker(
            np.random.default_rng(0), region, 240.0, 2, 3, 60.0)
        decoded = model.decode_lower(worker, tasks)
        assert 0 <= decoded.satisfied <= len(tasks)


class TestGPNSolver:
    def test_plan_returns_route_over_all_tasks(self, model, region):
        solver = GPNSolver(model)
        worker, tasks = sample_training_worker(
            np.random.default_rng(0), region, 240.0, 2, 2, 120.0)
        sensing = [t for t in tasks if isinstance(t, SensingTask)]
        result = solver.plan(worker, sensing)
        assert result.route is not None
        assert len(result.route.tasks) == len(tasks)

    def test_empty_plan(self, model):
        solver = GPNSolver(model)
        worker = Worker(1, Location(0, 0), Location(600, 0), 0.0, 240.0, ())
        result = solver.plan(worker, [])
        assert result.feasible

    def test_repair_falls_back_to_insertion(self, region):
        # An untrained model on a windowed instance often mis-orders;
        # with repair the result must be feasible whenever insertion
        # can solve it.
        from repro.tsptw import InsertionSolver

        model = make_default_gpn(region, 240.0, d_model=16, seed=3)
        worker = Worker(1, Location(0, 0), Location(0, 0), 0.0, 240.0, ())
        sensing = [
            SensingTask(1, Location(600, 0), 0.0, 30.0, 5.0),
            SensingTask(2, Location(300, 0), 100.0, 240.0, 5.0),
        ]
        assert InsertionSolver(speed=SPEED).plan(worker, sensing).feasible
        repaired = GPNSolver(model, repair=True).plan(worker, sensing)
        assert repaired.feasible

    def test_lower_only_mode(self, model, region):
        solver = GPNSolver(model, use_upper=False)
        worker, tasks = sample_training_worker(
            np.random.default_rng(0), region, 240.0, 1, 2, 120.0)
        sensing = [t for t in tasks if isinstance(t, SensingTask)]
        result = solver.plan(worker, sensing)
        assert result.route is not None


class TestPlanMany:
    def test_matches_count_and_feasibility_verified(self, model, region):
        solver = GPNSolver(model, repair=False)
        rng = np.random.default_rng(2)
        worker, tasks = sample_training_worker(rng, region, 240.0, 2, 6, 120.0)
        sensing = [t for t in tasks if isinstance(t, SensingTask)]
        candidate_sets = [[s] for s in sensing] + [sensing[:2]]
        results = solver.plan_many(worker, candidate_sets)
        assert len(results) == len(candidate_sets)
        for candidate_set, result in zip(candidate_sets, results):
            assert result.route is not None
            route_sensing = {t.task_id for t in result.route.sensing_tasks}
            assert route_sensing == {t.task_id for t in candidate_set}
            # Feasibility flags are backed by exact simulation.
            assert result.feasible == (result.route.simulate().feasible
                                       and result.route.covers_all_travel_tasks())

    def test_repair_applies_per_candidate(self, region):
        from repro.core import Location, SensingTask, Worker
        from repro.tsptw import InsertionSolver

        model = make_default_gpn(region, 240.0, d_model=16, seed=3)
        worker = Worker(1, Location(0, 0), Location(0, 0), 0.0, 240.0, ())
        hard_set = [
            SensingTask(1, Location(600, 0), 0.0, 30.0, 5.0),
            SensingTask(2, Location(300, 0), 100.0, 240.0, 5.0),
        ]
        assert InsertionSolver().plan(worker, hard_set).feasible
        solver = GPNSolver(model, repair=True)
        results = solver.plan_many(worker, [hard_set])
        assert results[0].feasible

    def test_empty_candidate_set(self, model, region):
        solver = GPNSolver(model)
        rng = np.random.default_rng(4)
        worker, tasks = sample_training_worker(rng, region, 240.0, 2, 1, 120.0)
        results = solver.plan_many(worker, [[]])
        assert len(results) == 1
        # Travel tasks only.
        assert results[0].route.sensing_tasks == ()


class TestTSPTWTrainer:
    def test_lower_training_improves_reward(self, region):
        model = make_default_gpn(region, 240.0, d_model=16, seed=0)
        config = TSPTWTrainingConfig(lower_iterations=12, upper_iterations=0,
                                     batch_size=4, lr=3e-3,
                                     num_travel=1, num_sensing=3)
        trainer = TSPTWTrainer(model, region, config,
                               rng=np.random.default_rng(0))
        trainer.train_lower()
        history = trainer.history["lower"]
        assert len(history) == 12
        early = np.mean(history[:4])
        late = np.mean(history[-4:])
        assert late >= early - 0.2  # learning signal, allow noise

    def test_upper_training_runs(self, region):
        model = make_default_gpn(region, 240.0, d_model=16, seed=0)
        config = TSPTWTrainingConfig(lower_iterations=2, upper_iterations=3,
                                     batch_size=2, num_travel=1, num_sensing=2)
        trainer = TSPTWTrainer(model, region, config,
                               rng=np.random.default_rng(0))
        trainer.train()
        assert len(trainer.history["upper"]) == 3

    def test_evaluate_reports_rates(self, region):
        model = make_default_gpn(region, 240.0, d_model=16, seed=0)
        config = TSPTWTrainingConfig(num_travel=1, num_sensing=2)
        trainer = TSPTWTrainer(model, region, config,
                               rng=np.random.default_rng(0))
        stats = trainer.evaluate(num_instances=5)
        assert 0.0 <= stats["feasible_rate"] <= 1.0

    def test_training_changes_parameters(self, region):
        model = make_default_gpn(region, 240.0, d_model=16, seed=0)
        before = {k: v.copy() for k, v in model.lower.state_dict().items()}
        # Tight windows and several tasks so batch rewards differ (a batch
        # of identical rewards has zero advantage and thus zero gradient).
        config = TSPTWTrainingConfig(lower_iterations=5, upper_iterations=0,
                                     batch_size=4, num_travel=2, num_sensing=5,
                                     window_minutes=30.0)
        TSPTWTrainer(model, region, config,
                     rng=np.random.default_rng(0)).train_lower()
        after = model.lower.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)
