"""Tests for the deterministic process-pool fan-out (``repro.parallel``)."""

import numpy as np
import pytest

from repro import parallel
from repro.parallel import (
    derive_rngs,
    derive_seeds,
    fork_available,
    parallel_map,
)


def square(x):
    return x * x


def draw(x, rng):
    return x + int(rng.integers(0, 1_000_000))


class TestSerialPath:
    def test_workers_one_matches_map(self):
        assert parallel_map(square, range(10), workers=1) == \
            [x * x for x in range(10)]

    def test_workers_none_is_serial(self):
        assert parallel_map(square, [3, 4]) == [9, 16]

    def test_empty_items(self):
        assert parallel_map(square, [], workers=4) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(square, [5], workers=4) == [25]

    def test_closures_allowed(self):
        offset = 7
        assert parallel_map(lambda x: x + offset, [1, 2], workers=1) == [8, 9]


@pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
class TestParallelPath:
    def test_matches_serial(self):
        serial = parallel_map(square, range(20), workers=1)
        fanned = parallel_map(square, range(20), workers=4)
        assert fanned == serial

    def test_chunksize_accepted(self):
        assert parallel_map(square, range(8), workers=2, chunksize=3) == \
            [x * x for x in range(8)]

    def test_closures_cross_fork(self):
        big = list(range(1000))
        assert parallel_map(lambda i: big[i], [0, 999], workers=2) == [0, 999]

    def test_nested_call_degrades_to_serial(self):
        def outer(x):
            return sum(parallel_map(square, range(x + 1), workers=2))

        assert parallel_map(outer, [2, 3], workers=2) == [5, 14]


class TestSeededDeterminism:
    def test_derive_seeds_stable(self):
        a = [s.generate_state(2).tolist() for s in derive_seeds(42, 3)]
        b = [s.generate_state(2).tolist() for s in derive_seeds(42, 3)]
        assert a == b

    def test_derive_rngs_independent(self):
        rngs = derive_rngs(0, 2)
        assert rngs[0].integers(0, 10**9) != rngs[1].integers(0, 10**9)

    def test_seeded_serial_reproducible(self):
        a = parallel_map(draw, range(6), workers=1, seed=123)
        b = parallel_map(draw, range(6), workers=1, seed=123)
        assert a == b

    @pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
    def test_seeded_parallel_matches_serial(self):
        serial = parallel_map(draw, range(12), workers=1, seed=99)
        fanned = parallel_map(draw, range(12), workers=3, seed=99)
        assert fanned == serial

    def test_use_seeds_without_seed_passes_rng(self):
        results = parallel_map(lambda x, rng: isinstance(
            rng, np.random.Generator), range(3), use_seeds=True)
        assert results == [True, True, True]


class TestFallbacks:
    def test_fork_unavailable_falls_back(self, monkeypatch):
        monkeypatch.setattr(parallel, "fork_available", lambda: False)
        assert parallel_map(square, range(5), workers=4) == \
            [x * x for x in range(5)]

    def test_fork_state_cleared_after_run(self):
        parallel_map(square, range(4), workers=2)
        assert parallel._FORK_STATE == {}

    @pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
    def test_pool_construction_failure_falls_back(self, monkeypatch):
        def refuse(method):
            raise OSError("cannot fork")

        monkeypatch.setattr(parallel.multiprocessing, "get_context", refuse)
        assert parallel_map(square, range(5), workers=4) == \
            [x * x for x in range(5)]
        assert parallel._FORK_STATE == {}


@pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
class TestFailurePropagation:
    """A raising ``fn`` must propagate — never silently re-run serially.

    The old code wrapped the whole pool run in ``except (OSError,
    AssertionError)`` and fell back to the serial loop, so a worker that
    had already performed side effects would execute again in the parent
    and the original error context was lost.
    """

    def test_worker_exception_propagates(self):
        def explode(x):
            if x == 2:
                raise OSError("disk gone")
            return x

        with pytest.raises(OSError, match="disk gone"):
            parallel_map(explode, range(4), workers=2)

    def test_non_oserror_propagates_too(self):
        def explode(x):
            raise ValueError(f"bad item {x}")

        with pytest.raises(ValueError, match="bad item"):
            parallel_map(explode, range(4), workers=2)

    def test_no_serial_rerun_after_worker_failure(self, tmp_path):
        # Workers append one line per execution to a shared log (O_APPEND
        # writes from separate processes don't interleave at this size).
        log = tmp_path / "executions.log"

        def record_and_maybe_explode(x):
            with open(log, "a") as handle:
                handle.write(f"{x}\n")
            if x == 1:
                raise RuntimeError("boom")
            return x

        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(record_and_maybe_explode, range(6), workers=3,
                         chunksize=1)
        executions = log.read_text().split()
        # Each item ran at most once: the failure was not retried serially.
        assert len(executions) == len(set(executions))

    def test_fork_state_cleared_after_failure(self):
        def explode(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            parallel_map(explode, range(4), workers=2)
        assert parallel._FORK_STATE == {}


@pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
class TestTelemetryPropagation:
    """Worker-side obs counters/events ship back and merge in item order."""

    def _traced_counts(self, workers):
        from repro import obs
        from repro.obs import ListSink

        def work(x):
            obs.count("work.items")
            obs.count("work.value", x)
            obs.event("work.done", item=x)
            return x * x

        sink = ListSink()
        with obs.tracing(sink=sink) as tracer:
            results = parallel_map(work, range(8), workers=workers)
            counters = dict(tracer.metrics.counters)
        events = [r for r in sink.records if r["type"] == "event"]
        return results, counters, events

    def test_parallel_counters_match_serial(self):
        serial_results, serial_counters, _ = self._traced_counts(workers=1)
        fanned_results, fanned_counters, _ = self._traced_counts(workers=4)
        assert fanned_results == serial_results
        assert fanned_counters == serial_counters
        assert fanned_counters["work.items"] == 8
        assert fanned_counters["work.value"] == sum(range(8))

    def test_events_arrive_in_item_order(self):
        _, _, events = self._traced_counts(workers=4)
        assert [r["item"] for r in events] == list(range(8))
        seqs = [r["seq"] for r in events]
        assert seqs == sorted(seqs)

    def test_untraced_run_ships_no_snapshots(self):
        # With tracing disabled capture_child yields None snapshots; the
        # map still returns plain results.
        assert parallel_map(square, range(6), workers=3) == \
            [x * x for x in range(6)]
