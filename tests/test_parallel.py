"""Tests for the deterministic process-pool fan-out (``repro.parallel``)."""

import numpy as np
import pytest

from repro import parallel
from repro.parallel import (
    derive_rngs,
    derive_seeds,
    fork_available,
    parallel_map,
)


def square(x):
    return x * x


def draw(x, rng):
    return x + int(rng.integers(0, 1_000_000))


class TestSerialPath:
    def test_workers_one_matches_map(self):
        assert parallel_map(square, range(10), workers=1) == \
            [x * x for x in range(10)]

    def test_workers_none_is_serial(self):
        assert parallel_map(square, [3, 4]) == [9, 16]

    def test_empty_items(self):
        assert parallel_map(square, [], workers=4) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(square, [5], workers=4) == [25]

    def test_closures_allowed(self):
        offset = 7
        assert parallel_map(lambda x: x + offset, [1, 2], workers=1) == [8, 9]


@pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
class TestParallelPath:
    def test_matches_serial(self):
        serial = parallel_map(square, range(20), workers=1)
        fanned = parallel_map(square, range(20), workers=4)
        assert fanned == serial

    def test_chunksize_accepted(self):
        assert parallel_map(square, range(8), workers=2, chunksize=3) == \
            [x * x for x in range(8)]

    def test_closures_cross_fork(self):
        big = list(range(1000))
        assert parallel_map(lambda i: big[i], [0, 999], workers=2) == [0, 999]

    def test_nested_call_degrades_to_serial(self):
        def outer(x):
            return sum(parallel_map(square, range(x + 1), workers=2))

        assert parallel_map(outer, [2, 3], workers=2) == [5, 14]


class TestSeededDeterminism:
    def test_derive_seeds_stable(self):
        a = [s.generate_state(2).tolist() for s in derive_seeds(42, 3)]
        b = [s.generate_state(2).tolist() for s in derive_seeds(42, 3)]
        assert a == b

    def test_derive_rngs_independent(self):
        rngs = derive_rngs(0, 2)
        assert rngs[0].integers(0, 10**9) != rngs[1].integers(0, 10**9)

    def test_seeded_serial_reproducible(self):
        a = parallel_map(draw, range(6), workers=1, seed=123)
        b = parallel_map(draw, range(6), workers=1, seed=123)
        assert a == b

    @pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
    def test_seeded_parallel_matches_serial(self):
        serial = parallel_map(draw, range(12), workers=1, seed=99)
        fanned = parallel_map(draw, range(12), workers=3, seed=99)
        assert fanned == serial

    def test_use_seeds_without_seed_passes_rng(self):
        results = parallel_map(lambda x, rng: isinstance(
            rng, np.random.Generator), range(3), use_seeds=True)
        assert results == [True, True, True]


class TestFallbacks:
    def test_fork_unavailable_falls_back(self, monkeypatch):
        monkeypatch.setattr(parallel, "fork_available", lambda: False)
        assert parallel_map(square, range(5), workers=4) == \
            [x * x for x in range(5)]

    def test_fork_state_cleared_after_run(self):
        parallel_map(square, range(4), workers=2)
        assert parallel._FORK_STATE == {}
