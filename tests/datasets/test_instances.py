"""Tests for instance construction, splits and Figure-4 distributions."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    InstanceOptions,
    generate_instance,
    generate_instances,
    generator_for,
    summarize_dataset,
    train_val_test_split,
    travel_task_histogram,
    worker_count_histogram,
)


@pytest.fixture(scope="module")
def delivery_instances():
    return generate_instances("delivery", 8, seed=0,
                              options=InstanceOptions(task_density=0.1))


class TestGenerateInstances:
    def test_count(self, delivery_instances):
        assert len(delivery_instances) == 8

    def test_deterministic(self):
        options = InstanceOptions(task_density=0.1)
        a = generate_instances("delivery", 2, seed=3, options=options)
        b = generate_instances("delivery", 2, seed=3, options=options)
        assert a[0].workers[0].origin == b[0].workers[0].origin
        assert [t.task_id for t in a[0].sensing_tasks] == \
            [t.task_id for t in b[0].sensing_tasks]

    def test_instances_validate(self, delivery_instances):
        for instance in delivery_instances:
            instance.validate()  # raises on problems

    def test_names_unique(self, delivery_instances):
        names = [i.name for i in delivery_instances]
        assert len(set(names)) == len(names)

    def test_options_applied(self):
        options = InstanceOptions(budget=123.0, mu=2.0, window_minutes=60.0,
                                  alpha=0.7, task_density=0.1)
        instance = generate_instances("delivery", 1, seed=0,
                                      options=options)[0]
        assert instance.budget == 123.0
        assert instance.mu == 2.0
        assert instance.coverage.alpha == 0.7
        windows = {t.tw_end - t.tw_start for t in instance.sensing_tasks}
        assert windows == {60.0}

    def test_fixed_worker_count(self):
        options = InstanceOptions(task_density=0.1, num_workers=3)
        instance = generate_instances("tourism", 1, seed=0, options=options)[0]
        assert instance.num_workers == 3

    @pytest.mark.parametrize("dataset", DATASET_NAMES)
    def test_all_datasets_generate(self, dataset):
        options = InstanceOptions(task_density=0.05)
        instance = generate_instances(dataset, 1, seed=1, options=options)[0]
        assert instance.num_workers > 0
        assert instance.num_sensing_tasks > 0

    def test_sensing_task_density(self):
        generator = generator_for("delivery")
        full = generator.spec.grid.num_cells * 8  # 240 / 30 slots
        options = InstanceOptions(task_density=0.5)
        instance = generate_instances("delivery", 1, seed=0,
                                      options=options)[0]
        assert instance.num_sensing_tasks == round(full * 0.5)


class TestSplit:
    def test_paper_proportions(self):
        instances = list(range(160))  # stand-in objects
        train, val, test = train_val_test_split(instances)
        assert (len(train), len(val), len(test)) == (120, 20, 20)

    def test_no_overlap_and_complete(self):
        instances = list(range(40))
        train, val, test = train_val_test_split(instances)
        assert len(train) + len(val) + len(test) == 40
        assert set(train).isdisjoint(val)
        assert set(val).isdisjoint(test)

    def test_too_few_instances_raises(self):
        with pytest.raises(ValueError):
            train_val_test_split([1, 2, 3], val_fraction=0.5,
                                 test_fraction=0.5)

    def test_tiny_list_gets_train_only(self):
        train, val, test = train_val_test_split([1, 2])
        assert train == [1, 2]
        assert val == [] and test == []


class TestDistributions:
    def test_travel_task_histogram(self, delivery_instances):
        dist = travel_task_histogram(delivery_instances)
        assert dist.counts.sum() == sum(i.num_workers
                                        for i in delivery_instances)
        assert dist.mean > 0

    def test_worker_count_histogram(self, delivery_instances):
        dist = worker_count_histogram(delivery_instances)
        assert dist.counts.sum() == len(delivery_instances)

    def test_summary_has_both_panels(self, delivery_instances):
        summary = summarize_dataset(delivery_instances)
        assert set(summary) == {"travel_tasks", "workers"}

    def test_rows_render(self, delivery_instances):
        dist = travel_task_histogram(delivery_instances, bins=5)
        rows = dist.rows()
        assert len(rows) == 5
        assert all(isinstance(label, str) for label, _ in rows)

    def test_moments(self, delivery_instances):
        dist = travel_task_histogram(delivery_instances)
        assert dist.min <= dist.mean <= dist.max
        assert dist.std >= 0
