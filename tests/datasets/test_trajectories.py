"""Tests for the trajectory substrate: synthesis, stay-point detection,
and the worker round-trip."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Location, TravelTask, Worker
from repro.datasets.trajectories import (
    StayPoint,
    Trajectory,
    TrajectoryPoint,
    detect_stay_points,
    synthesize_trip,
    worker_from_trajectory,
)


@pytest.fixture
def courier():
    return Worker(
        worker_id=7,
        origin=Location(0, 0),
        destination=Location(1200, 0),
        earliest_departure=10.0,
        latest_arrival=250.0,
        travel_tasks=(
            TravelTask(1, Location(400, 0), 10.0),
            TravelTask(2, Location(800, 300), 12.0),
        ),
    )


class TestTrajectory:
    def test_rejects_unsorted_timestamps(self):
        with pytest.raises(ValueError):
            Trajectory((TrajectoryPoint(5, 0, 0), TrajectoryPoint(1, 0, 0)))

    def test_duration(self):
        traj = Trajectory((TrajectoryPoint(2, 0, 0), TrajectoryPoint(9, 1, 1)))
        assert traj.duration == 7.0
        assert len(traj) == 2

    def test_empty_duration(self):
        assert Trajectory(()).duration == 0.0


class TestSynthesizeTrip:
    def test_starts_and_ends_at_endpoints(self, courier):
        traj = synthesize_trip(courier)
        assert traj.points[0].location.distance_to(courier.origin) < 1e-9
        assert traj.points[-1].location.distance_to(courier.destination) < 1e-6

    def test_timestamps_span_route(self, courier):
        traj = synthesize_trip(courier)
        assert traj.points[0].t == pytest.approx(courier.earliest_departure)
        assert traj.duration > 0

    def test_sample_period_respected(self, courier):
        traj = synthesize_trip(courier, sample_period=2.0)
        gaps = [b.t - a.t for a, b in zip(traj.points, traj.points[1:])]
        assert max(gaps) <= 2.0 + 1e-9

    def test_dwells_at_travel_tasks(self, courier):
        traj = synthesize_trip(courier, sample_period=1.0)
        # During the 10-minute service at (400, 0) the position holds.
        at_task = [p for p in traj.points
                   if p.location.distance_to(Location(400, 0)) < 1.0]
        assert len(at_task) >= 9

    def test_noise_perturbs_positions(self, courier):
        clean = synthesize_trip(courier, noise_std=0.0)
        noisy = synthesize_trip(courier, noise_std=10.0,
                                rng=np.random.default_rng(0))
        deltas = [c.location.distance_to(n.location)
                  for c, n in zip(clean.points, noisy.points)]
        assert np.mean(deltas) > 1.0

    def test_deterministic_given_rng(self, courier):
        a = synthesize_trip(courier, noise_std=5.0,
                            rng=np.random.default_rng(3))
        b = synthesize_trip(courier, noise_std=5.0,
                            rng=np.random.default_rng(3))
        assert all(p.x == q.x and p.y == q.y
                   for p, q in zip(a.points, b.points))


class TestDetectStayPoints:
    def test_finds_service_stops(self, courier):
        traj = synthesize_trip(courier, sample_period=1.0)
        stays = detect_stay_points(traj, radius=30.0, min_duration=5.0)
        stay_locations = [s.location for s in stays]
        for task in courier.travel_tasks:
            nearest = min(loc.distance_to(task.location)
                          for loc in stay_locations)
            assert nearest < 30.0, f"stop at {task.location} not detected"

    def test_no_stays_in_pure_motion(self):
        # Constant-velocity trace, no dwells long enough.
        points = tuple(TrajectoryPoint(t, 100.0 * t, 0.0) for t in range(20))
        assert detect_stay_points(Trajectory(points), radius=30.0,
                                  min_duration=2.0) == []

    def test_stay_interval_recorded(self):
        points = (
            [TrajectoryPoint(t, 50.0 * t, 0.0) for t in range(5)]
            + [TrajectoryPoint(5 + k, 250.0, 0.0) for k in range(10)]
            + [TrajectoryPoint(15 + t, 250.0 + 50.0 * t, 0.0)
               for t in range(1, 5)]
        )
        stays = detect_stay_points(Trajectory(tuple(points)), radius=10.0,
                                   min_duration=5.0)
        assert len(stays) == 1
        stay = stays[0]
        assert stay.arrival == pytest.approx(5.0, abs=1.01)
        assert stay.duration >= 5.0
        assert stay.location.distance_to(Location(250, 0)) < 10.0

    def test_noise_tolerant(self, courier):
        traj = synthesize_trip(courier, noise_std=5.0,
                               rng=np.random.default_rng(1))
        stays = detect_stay_points(traj, radius=40.0, min_duration=5.0)
        assert len(stays) >= len(courier.travel_tasks)


class TestWorkerRoundTrip:
    def test_recovers_stop_structure(self, courier):
        traj = synthesize_trip(courier, sample_period=1.0)
        rebuilt = worker_from_trajectory(traj, worker_id=7, radius=40.0,
                                         min_duration=5.0)
        assert rebuilt.num_travel_tasks == courier.num_travel_tasks
        for original, recovered in zip(courier.travel_tasks,
                                       rebuilt.travel_tasks):
            assert recovered.location.distance_to(original.location) < 40.0

    def test_endpoints_and_times(self, courier):
        traj = synthesize_trip(courier)
        rebuilt = worker_from_trajectory(traj, worker_id=7)
        assert rebuilt.origin.distance_to(courier.origin) < 1e-6
        assert rebuilt.destination.distance_to(courier.destination) < 1e-5
        assert rebuilt.earliest_departure == pytest.approx(
            courier.earliest_departure)

    def test_slack_extends_window(self, courier):
        traj = synthesize_trip(courier)
        tight = worker_from_trajectory(traj, worker_id=7, slack=1.0)
        loose = worker_from_trajectory(traj, worker_id=7, slack=1.5)
        assert loose.time_budget > tight.time_budget

    def test_rebuilt_worker_route_feasible(self, courier):
        from repro.tsptw import InsertionSolver

        traj = synthesize_trip(courier, sample_period=1.0)
        rebuilt = worker_from_trajectory(traj, worker_id=7, slack=1.2)
        assert InsertionSolver().base_route(rebuilt).feasible

    def test_too_short_trajectory_rejected(self):
        with pytest.raises(ValueError):
            worker_from_trajectory(
                Trajectory((TrajectoryPoint(0, 0, 0),)), worker_id=1)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_property_roundtrip_counts(self, seed):
        rng = np.random.default_rng(seed)
        num_tasks = int(rng.integers(1, 4))
        # Well-separated stops so detection is unambiguous.
        xs = np.cumsum(rng.uniform(300, 600, size=num_tasks + 1))
        tasks = tuple(TravelTask(k, Location(float(xs[k]), 0.0), 10.0)
                      for k in range(num_tasks))
        worker = Worker(1, Location(0, 0), Location(float(xs[-1] + 400), 0.0),
                        0.0, 10_000.0, tasks)
        traj = synthesize_trip(worker, sample_period=1.0)
        rebuilt = worker_from_trajectory(traj, worker_id=1, radius=40.0,
                                         min_duration=5.0)
        assert rebuilt.num_travel_tasks == num_tasks
