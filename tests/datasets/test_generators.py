"""Tests for the three dataset family generators."""

import numpy as np
import pytest

from repro.core import simulate_route
from repro.datasets import (
    DELIVERY_SPEC,
    LADE_SPEC,
    LADE_STATIONS,
    TOURISM_POIS,
    TOURISM_SPEC,
    delivery_generator,
    generator_for,
    lade_generator,
    tourism_generator,
)
from repro.tsptw import InsertionSolver

GENERATORS = [
    ("delivery", delivery_generator),
    ("tourism", tourism_generator),
    ("lade", lade_generator),
]


@pytest.mark.parametrize("name,factory", GENERATORS)
class TestAllGenerators:
    def test_worker_inside_region(self, name, factory):
        generator = factory()
        rng = np.random.default_rng(0)
        for worker in generator.make_workers(rng, count=5):
            region = generator.spec.region
            assert region.contains(worker.origin)
            assert region.contains(worker.destination)
            for task in worker.travel_tasks:
                assert region.contains(task.location)

    def test_worker_route_is_feasible(self, name, factory):
        generator = factory()
        rng = np.random.default_rng(1)
        planner = InsertionSolver(speed=generator.spec.speed)
        for worker in generator.make_workers(rng, count=5):
            result = planner.base_route(worker)
            assert result.feasible, f"{name} worker cannot finish own trip"

    def test_worker_fits_time_span(self, name, factory):
        generator = factory()
        rng = np.random.default_rng(2)
        for worker in generator.make_workers(rng, count=5):
            assert worker.earliest_departure >= 0.0
            assert worker.latest_arrival <= generator.spec.time_span + 1e-9

    def test_travel_task_counts_in_range(self, name, factory):
        generator = factory()
        rng = np.random.default_rng(3)
        low, high = generator.spec.travel_tasks_per_worker
        counts = [generator.make_worker(i, rng).num_travel_tasks
                  for i in range(30)]
        assert min(counts) >= 0
        assert max(counts) <= high

    def test_worker_count_range(self, name, factory):
        generator = factory()
        rng = np.random.default_rng(4)
        low, high = generator.spec.workers_per_instance
        for _ in range(5):
            workers = generator.make_workers(rng)
            assert low <= len(workers) <= high

    def test_deterministic_given_seed(self, name, factory):
        a = factory().make_workers(np.random.default_rng(5), count=3)
        b = factory().make_workers(np.random.default_rng(5), count=3)
        assert [w.origin for w in a] == [w.origin for w in b]

    def test_service_time_matches_spec(self, name, factory):
        generator = factory()
        rng = np.random.default_rng(6)
        worker = generator.make_worker(0, rng)
        for task in worker.travel_tasks:
            assert task.service_time == generator.spec.travel_service_time

    def test_slack_leaves_room_for_sensing(self, name, factory):
        generator = factory()
        rng = np.random.default_rng(7)
        planner = InsertionSolver(speed=generator.spec.speed)
        slacks = []
        for worker in generator.make_workers(rng, count=8):
            base = planner.base_route(worker).route_travel_time
            slacks.append(worker.time_budget - base)
        assert np.mean(slacks) > 0.0


class TestSpecs:
    def test_paper_grid_sizes(self):
        assert (DELIVERY_SPEC.grid_nx, DELIVERY_SPEC.grid_ny) == (10, 12)
        assert (TOURISM_SPEC.grid_nx, TOURISM_SPEC.grid_ny) == (10, 10)
        assert (LADE_SPEC.grid_nx, LADE_SPEC.grid_ny) == (10, 10)

    def test_paper_time_spans(self):
        assert DELIVERY_SPEC.time_span == 240.0
        assert TOURISM_SPEC.time_span == 360.0
        assert LADE_SPEC.time_span == 240.0

    def test_paper_service_times(self):
        assert DELIVERY_SPEC.travel_service_time == 10.0   # couriers: 10 min
        assert TOURISM_SPEC.travel_service_time == 20.0    # tourists: 20 min
        assert LADE_SPEC.travel_service_time == 10.0

    def test_paper_regions(self):
        assert (DELIVERY_SPEC.region.width,
                DELIVERY_SPEC.region.height) == (2000.0, 2400.0)
        assert (TOURISM_SPEC.region.width,
                TOURISM_SPEC.region.height) == (8000.0, 8000.0)

    def test_fixed_pois_inside_region(self):
        for poi in TOURISM_POIS:
            assert TOURISM_SPEC.region.contains(poi)

    def test_fixed_stations_inside_region(self):
        for station in LADE_STATIONS:
            assert LADE_SPEC.region.contains(station)

    def test_generator_for_lookup(self):
        assert generator_for("delivery").spec.name == "delivery"
        with pytest.raises(KeyError):
            generator_for("nonexistent")


class TestDatasetCharacter:
    def test_tourism_tasks_near_pois(self):
        generator = tourism_generator()
        rng = np.random.default_rng(8)
        worker = generator.make_worker(0, rng)
        for task in worker.travel_tasks:
            nearest = min(task.location.distance_to(p) for p in TOURISM_POIS)
            assert nearest < 500.0

    def test_delivery_tasks_clustered(self):
        generator = delivery_generator()
        rng = np.random.default_rng(9)
        worker = generator.make_worker(0, rng)
        if worker.num_travel_tasks >= 2:
            points = [t.location for t in worker.travel_tasks]
            cx = np.mean([p.x for p in points])
            cy = np.mean([p.y for p in points])
            spreads = [np.hypot(p.x - cx, p.y - cy) for p in points]
            assert np.mean(spreads) < 900.0

    def test_lade_endpoints_near_stations(self):
        generator = lade_generator()
        rng = np.random.default_rng(10)
        worker = generator.make_worker(0, rng)
        nearest = min(worker.origin.distance_to(s) for s in LADE_STATIONS)
        assert nearest < 800.0
