"""Edge-case behaviour across the stack: degenerate instances and limits.

Failure-injection style tests: what happens when a worker has no slack,
when no task fits the budget, when all workers share one location, etc.
Every solver must degrade gracefully (valid, possibly empty, solutions)
rather than crash.
"""

import numpy as np
import pytest

from repro.baselines import RandomSolver, TCPGSolver, TVPGSolver
from repro.core import (
    CoverageModel,
    Grid,
    Location,
    Region,
    SensingTask,
    TravelTask,
    USMDWInstance,
    Worker,
)
from repro.smore import (
    RatioSelectionRule,
    SelectionEnv,
    SMORESolver,
    TASNet,
    TASNetConfig,
    TASNetPolicy,
)
from repro.tsptw import InsertionSolver


def make_instance(workers, tasks, budget=100.0, span=240.0):
    grid = Grid(Region(1000, 1000), 4, 4)
    coverage = CoverageModel(grid, span, 60.0)
    return USMDWInstance(workers=tuple(workers), sensing_tasks=tuple(tasks),
                         budget=budget, mu=1.0, coverage=coverage)


def default_task(task_id=100, x=500.0, y=500.0):
    return SensingTask(task_id, Location(x, y), 0.0, 240.0, 5.0)


ALL_SOLVERS = [
    lambda: RandomSolver(seed=0),
    TVPGSolver,
    TCPGSolver,
    lambda: SMORESolver(InsertionSolver(), RatioSelectionRule()),
]


class TestZeroSlackWorker:
    """A worker whose time budget exactly covers their own trip."""

    def _worker(self):
        # Straight line 0 -> 900, 15 min travel + 10 min service = 25 min.
        return Worker(1, Location(0, 0), Location(900, 0), 0.0, 25.0,
                      (TravelTask(10, Location(450, 0), 10.0),))

    @pytest.mark.parametrize("factory", ALL_SOLVERS)
    def test_no_assignment_possible(self, factory):
        instance = make_instance([self._worker()], [default_task()])
        solution = factory().solve(instance)
        assert solution.num_completed == 0
        assert solution.total_incentive == 0.0
        assert solution.validate() == []


class TestZeroBudget:
    @pytest.mark.parametrize("factory", ALL_SOLVERS)
    def test_only_free_tasks_assignable(self, factory):
        worker = Worker(1, Location(0, 0), Location(900, 0), 0.0, 240.0, ())
        instance = make_instance([worker], [default_task()], budget=0.0)
        solution = factory().solve(instance)
        assert solution.total_incentive == 0.0
        assert solution.validate() == []


class TestNoSensingTasks:
    def test_env_immediately_done(self):
        worker = Worker(1, Location(0, 0), Location(900, 0), 0.0, 240.0, ())
        instance = make_instance([worker], [])
        env = SelectionEnv(instance, InsertionSolver())
        state = env.reset()
        assert state.done

    @pytest.mark.parametrize("factory", ALL_SOLVERS)
    def test_solvers_return_empty(self, factory):
        worker = Worker(1, Location(0, 0), Location(900, 0), 0.0, 240.0, ())
        instance = make_instance([worker], [])
        solution = factory().solve(instance)
        assert solution.num_completed == 0
        assert solution.validate() == []


class TestSingleWorkerSingleTask:
    def test_smore_assigns_it(self):
        worker = Worker(1, Location(0, 0), Location(900, 0), 0.0, 240.0, ())
        task = default_task(x=450.0, y=0.0)  # on the way
        instance = make_instance([worker], [task])
        solution = SMORESolver(InsertionSolver(),
                               RatioSelectionRule()).solve(instance)
        assert solution.num_completed == 1
        assert solution.validate() == []


class TestCoincidentLocations:
    def test_all_entities_at_one_point(self):
        origin = Location(500, 500)
        worker = Worker(1, origin, origin, 0.0, 240.0,
                        (TravelTask(10, origin, 10.0),))
        tasks = [SensingTask(100 + k, origin, 0.0, 240.0, 5.0)
                 for k in range(3)]
        instance = make_instance([worker], tasks)
        solution = SMORESolver(InsertionSolver(),
                               RatioSelectionRule()).solve(instance)
        # Zero travel: every task is assignable at service-time cost only.
        assert solution.num_completed == 3
        assert solution.validate() == []


class TestTasNetOnDegenerateInstances:
    def test_single_worker_single_candidate(self):
        worker = Worker(1, Location(0, 0), Location(900, 0), 0.0, 240.0, ())
        task = default_task(x=450.0, y=0.0)
        instance = make_instance([worker], [task])
        net = TASNet(TASNetConfig(d_model=8, num_heads=2, num_layers=1,
                                  conv_channels=2), 4, 4,
                     rng=np.random.default_rng(0))
        solution = SMORESolver(InsertionSolver(),
                               TASNetPolicy(net)).solve(instance)
        assert solution.num_completed == 1
        assert solution.validate() == []

    def test_many_workers_one_task(self):
        workers = [
            Worker(i, Location(100 * i, 0), Location(100 * i + 500, 0),
                   0.0, 240.0, ())
            for i in range(1, 5)
        ]
        instance = make_instance(workers, [default_task(x=300.0, y=0.0)])
        net = TASNet(TASNetConfig(d_model=8, num_heads=2, num_layers=1,
                                  conv_channels=2), 4, 4,
                     rng=np.random.default_rng(0))
        solution = SMORESolver(InsertionSolver(),
                               TASNetPolicy(net)).solve(instance)
        assert solution.num_completed == 1


class TestWindowBoundaries:
    def test_task_window_equal_to_service_time(self):
        # Window exactly fits the sensing period: only an exact-time
        # arrival (with waiting allowed) can complete it.
        worker = Worker(1, Location(0, 0), Location(120, 0), 0.0, 240.0, ())
        tight = SensingTask(100, Location(60, 0), 30.0, 35.0, 5.0)
        instance = make_instance([worker], [tight])
        solution = SMORESolver(InsertionSolver(),
                               RatioSelectionRule()).solve(instance)
        assert solution.validate() == []
        if solution.num_completed:
            stop = solution.routes[1].simulate().stops[0]
            assert stop.service_start == pytest.approx(30.0)

    def test_task_window_in_the_past_of_departure(self):
        worker = Worker(1, Location(0, 0), Location(120, 0), 100.0, 240.0, ())
        early = SensingTask(100, Location(60, 0), 0.0, 60.0, 5.0)
        instance = make_instance([worker], [early])
        solution = SMORESolver(InsertionSolver(),
                               RatioSelectionRule()).solve(instance)
        assert solution.num_completed == 0
