"""Shared fixtures: a tiny run profile so experiment tests stay fast."""

import pytest

from repro.baselines import MSAConfig
from repro.experiments import ExperimentRunner, RunProfile
from repro.experiments.pretrained import PretrainSpec

TINY_PRETRAIN = PretrainSpec(
    num_train=2, num_val=1, imitation_iterations=2, rl_iterations=1,
    d_model=8, num_heads=2, num_layers=1, conv_channels=2,
    task_density=0.05,
)

TINY_PROFILE = RunProfile(
    name="tiny",
    num_test_instances=1,
    task_density=0.05,
    msa=MSAConfig(num_starts=1, iterations_per_round=15,
                  patience_rounds=1, time_limit=5.0),
    pretrain=TINY_PRETRAIN,
)


@pytest.fixture
def runner(tmp_path):
    return ExperimentRunner(profile=TINY_PROFILE, seed=100,
                            cache_dir=tmp_path / "pretrained")
