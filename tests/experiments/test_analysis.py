"""Tests for solution analytics: worker reports and spatial Gini."""

import numpy as np
import pytest

from repro.core import (
    CoverageModel,
    Grid,
    Location,
    Region,
    SensingTask,
    Solution,
    TravelTask,
    USMDWInstance,
    Worker,
    WorkingRoute,
)
from repro.datasets import InstanceOptions, generate_instances
from repro.experiments.analysis import analyze_solution, spatial_gini
from repro.smore import RatioSelectionRule, SMORESolver
from repro.tsptw import InsertionSolver


@pytest.fixture(scope="module")
def solved():
    options = InstanceOptions(task_density=0.08)
    instance = generate_instances("delivery", 1, seed=9, options=options)[0]
    solution = SMORESolver(InsertionSolver(), RatioSelectionRule()).solve(instance)
    return instance, solution


class TestSpatialGini:
    def _solution_with_tasks(self, cells):
        grid = Grid(Region(400, 400), 4, 4)
        coverage = CoverageModel(grid, 240.0, 60.0)
        worker = Worker(1, Location(0, 0), Location(399, 399), 0.0, 240.0, ())
        tasks = tuple(
            SensingTask(100 + k, grid.cell_center(i, j), 0.0, 240.0, 1.0)
            for k, (i, j) in enumerate(cells))
        instance = USMDWInstance(workers=(worker,), sensing_tasks=tasks,
                                 budget=1000.0, mu=1.0, coverage=coverage)
        route = WorkingRoute(worker, tasks)
        return Solution(instance, routes={1: route}, incentives={1: 0.0})

    def test_empty_solution_zero(self):
        solution = self._solution_with_tasks([])
        solution.routes = {}
        assert spatial_gini(solution) == 0.0

    def test_perfectly_even_low_gini(self):
        # One task in every cell of the 4x4 grid.
        cells = [(i, j) for i in range(4) for j in range(4)]
        assert spatial_gini(self._solution_with_tasks(cells)) == pytest.approx(
            0.0, abs=1e-9)

    def test_single_cell_high_gini(self):
        cells = [(0, 0)] * 8
        gini = spatial_gini(self._solution_with_tasks(cells))
        assert gini > 0.9

    def test_partial_spread_intermediate(self):
        even = spatial_gini(self._solution_with_tasks(
            [(i, j) for i in range(4) for j in range(4)]))
        half = spatial_gini(self._solution_with_tasks(
            [(i, j) for i in range(2) for j in range(4)] * 2))
        single = spatial_gini(self._solution_with_tasks([(0, 0)] * 16))
        assert even < half < single


class TestAnalyzeSolution:
    def test_report_totals_match_solution(self, solved):
        instance, solution = solved
        report = analyze_solution(solution)
        assert report.objective == pytest.approx(solution.objective)
        assert report.num_completed == solution.num_completed
        assert report.total_incentive == pytest.approx(
            solution.total_incentive)
        assert 0.0 <= report.budget_utilisation <= 1.0 + 1e-9

    def test_worker_reports_cover_recruited(self, solved):
        _, solution = solved
        report = analyze_solution(solution)
        assert {w.worker_id for w in report.workers} == set(solution.routes)

    def test_detour_ratio_at_least_one(self, solved):
        _, solution = solved
        report = analyze_solution(solution)
        for worker in report.workers:
            assert worker.detour_ratio >= 1.0 - 1e-6

    def test_task_counts_sum(self, solved):
        _, solution = solved
        report = analyze_solution(solution)
        assert sum(w.sensing_tasks for w in report.workers) == \
            solution.num_completed

    def test_coverage_fraction(self, solved):
        _, solution = solved
        report = analyze_solution(solution)
        assert 0.0 <= report.coverage_fraction <= 1.0

    def test_render_is_readable(self, solved):
        _, solution = solved
        text = analyze_solution(solution).render()
        assert "objective" in text
        assert "Gini" in text
        assert "worker" in text

    def test_incentive_per_task_zero_for_no_tasks(self):
        from repro.experiments.analysis import WorkerReport

        report = WorkerReport(1, 0, 0.0, 10.0, 10.0, 0.0)
        assert report.incentive_per_task == 0.0
        assert report.detour_ratio == 1.0
