"""Tests for the experiment runner, metrics and pretrained-policy cache."""

import numpy as np
import pytest

from repro.core import Solution
from repro.experiments import (
    METHOD_ORDER,
    ExperimentRunner,
    MethodResult,
    aggregate,
)
from repro.experiments.pretrained import get_trained_policy

from .conftest import TINY_PRETRAIN


class TestAggregate:
    def _fake_solutions(self, instance, objectives):
        solutions = []
        for value in objectives:
            s = Solution(instance, solver_name="fake", wall_time=0.5)
            # objective is derived from routes; monkeypatch via property is
            # heavy — use an empty solution and check the zero path instead.
            solutions.append(s)
        return solutions

    def test_empty_solutions_aggregate_to_zero(self, runner):
        instance = runner.test_instances("delivery")[0]
        results = aggregate({"fake": self._fake_solutions(instance, [0, 0])})
        assert results[0].objective_mean == 0.0
        assert results[0].num_instances == 2

    def test_method_order_preserved(self, runner):
        instance = runner.test_instances("delivery")[0]
        results = aggregate({
            "b": self._fake_solutions(instance, [0]),
            "a": self._fake_solutions(instance, [0]),
        })
        assert [r.method for r in results] == ["b", "a"]

    def test_format_time_units(self):
        fast = MethodResult("x", 1.0, 0.0, 12.0, 1, 0, 0)
        slow = MethodResult("x", 1.0, 0.0, 120.0, 1, 0, 0)
        glacial = MethodResult("x", 1.0, 0.0, 7200.0, 1, 0, 0)
        assert fast.format_time() == "12.00 (s)"
        assert slow.format_time() == "2.0 (m)"
        assert glacial.format_time() == "2.0 (h)"


class TestRunner:
    def test_instances_deterministic(self, runner):
        a = runner.test_instances("delivery")
        b = runner.test_instances("delivery")
        assert a[0].workers[0].origin == b[0].workers[0].origin

    def test_option_overrides(self, runner):
        instances = runner.test_instances("delivery", budget=123.0)
        assert instances[0].budget == 123.0

    def test_run_setting_fast_methods(self, runner):
        results = runner.run_setting("delivery", methods=("RN", "TVPG"))
        methods = [r.method for r in results]
        assert methods == ["RN", "TVPG"]
        for result in results:
            assert result.num_instances == 1
            assert np.isfinite(result.objective_mean)

    def test_unknown_method_raises(self, runner):
        with pytest.raises(KeyError):
            runner.run_setting("delivery", methods=("WAT",))

    def test_method_order_matches_paper(self):
        assert METHOD_ORDER == ("RN", "TVPG", "TCPG", "MSA", "MSAGI",
                                "JDRL", "SMORE")

    def test_smore_runs_with_cache(self, runner):
        results = runner.run_setting("delivery", methods=("SMORE",))
        assert results[0].method == "SMORE"
        assert results[0].objective_mean > 0


class TestParallelRunner:
    def _make(self, tmp_path, workers):
        from .conftest import TINY_PROFILE

        return ExperimentRunner(profile=TINY_PROFILE, seed=100,
                                cache_dir=tmp_path / "pretrained",
                                workers=workers)

    def test_parallel_results_bit_identical_to_serial(self, tmp_path):
        methods = ("RN", "TVPG")
        serial = self._make(tmp_path, workers=1).run_setting(
            "delivery", methods=methods)
        fanned = self._make(tmp_path, workers=2).run_setting(
            "delivery", methods=methods)
        assert [r.method for r in fanned] == [r.method for r in serial]
        for a, b in zip(serial, fanned):
            # Everything except wall time must match exactly.
            assert a.objective_mean == b.objective_mean
            assert a.objective_std == b.objective_std
            assert a.num_completed_mean == b.num_completed_mean
            assert a.incentive_mean == b.incentive_mean
            assert a.num_instances == b.num_instances

    def test_workers_default_serial(self, runner):
        assert runner.workers == 1

    def test_smore_perf_counters_reported(self, runner):
        results = runner.run_setting("delivery", methods=("SMORE",))
        perf = results[0].perf
        assert perf is not None
        assert perf.planner_calls > 0
        assert perf.init_planner_calls > 0
        assert perf.init_time > 0


class TestPretrainedCache:
    def test_cache_roundtrip(self, tmp_path):
        cache = tmp_path / "cache"
        first = get_trained_policy("delivery", spec=TINY_PRETRAIN,
                                   cache_dir=cache)
        files = list(cache.glob("*.npz"))
        assert len(files) == 1
        second = get_trained_policy("delivery", spec=TINY_PRETRAIN,
                                    cache_dir=cache)
        state_a = first.net.state_dict()
        state_b = second.net.state_dict()
        for key in state_a:
            np.testing.assert_allclose(state_a[key], state_b[key])

    def test_cache_key_distinguishes_specs(self):
        from dataclasses import replace

        a = TINY_PRETRAIN.cache_key("delivery")
        b = replace(TINY_PRETRAIN, d_model=16).cache_key("delivery")
        assert a != b

    def test_cache_key_distinguishes_datasets(self):
        assert (TINY_PRETRAIN.cache_key("delivery")
                != TINY_PRETRAIN.cache_key("tourism"))
