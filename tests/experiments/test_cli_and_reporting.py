"""Tests for the experiments CLI (``python -m repro.experiments``) and the
JSON reporting path."""

import json

import pytest

from repro.experiments.__main__ import main
from repro.experiments.metrics import MethodResult
from repro.experiments.reporting import results_to_json


class TestResultsToJson:
    def _results(self):
        cell = [MethodResult("RN", 1.5, 0.1, 0.2, 2, 10.0, 99.0),
                MethodResult("SMORE", 2.0, 0.0, 0.1, 2, 12.0, 100.0)]
        return {"delivery": {"Budget=300": cell}}

    def test_roundtrip_structure(self):
        payload = json.loads(results_to_json(self._results()))
        assert payload["delivery"]["Budget=300"]["SMORE"]["objective"] == 2.0
        assert payload["delivery"]["Budget=300"]["RN"]["instances"] == 2

    def test_all_fields_present(self):
        payload = json.loads(results_to_json(self._results()))
        entry = payload["delivery"]["Budget=300"]["RN"]
        assert set(entry) == {"objective", "objective_std", "wall_time",
                              "instances", "completed", "incentive"}


class TestResultsToLatex:
    def _results(self):
        cell = [MethodResult("RN", 1.5, 0.1, 0.2, 2, 10.0, 99.0),
                MethodResult("SMORE", 2.0, 0.0, 0.1, 2, 12.0, 100.0)]
        return {"delivery": {"Budget=300": cell}}

    def test_structure(self):
        from repro.experiments.reporting import results_to_latex

        latex = results_to_latex("Table II", self._results())
        assert "\\begin{tabular}" in latex
        assert "\\toprule" in latex
        assert "SMORE" in latex

    def test_best_objective_bolded(self):
        from repro.experiments.reporting import results_to_latex

        latex = results_to_latex("Table II", self._results())
        assert "\\textbf{2.000}" in latex
        assert "\\textbf{1.500}" not in latex

    def test_one_block_per_dataset(self):
        from repro.experiments.reporting import results_to_latex

        results = self._results()
        results["tourism"] = results["delivery"]
        latex = results_to_latex("T", results)
        assert latex.count("\\begin{tabular}") == 2


class TestCLI:
    def test_figure4_runs(self, capsys):
        code = main(["figure4", "--datasets", "delivery"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "travel_tasks" in out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_dataset_subset_respected(self, capsys):
        main(["figure4", "--datasets", "tourism"])
        out = capsys.readouterr().out
        assert "[tourism]" in out
        assert "[delivery]" not in out
