"""Tests for the SVG rendering of instances and solutions."""

import xml.etree.ElementTree as ET

import pytest

from repro.datasets import InstanceOptions, generate_instances
from repro.experiments.svg import render_instance_svg, render_solution_svg
from repro.smore import RatioSelectionRule, SMORESolver
from repro.tsptw import InsertionSolver

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def instance():
    options = InstanceOptions(task_density=0.05)
    return generate_instances("delivery", 1, seed=3, options=options)[0]


@pytest.fixture(scope="module")
def solution(instance):
    return SMORESolver(InsertionSolver(), RatioSelectionRule()).solve(instance)


class TestInstanceSVG:
    def test_well_formed_xml(self, instance):
        root = ET.fromstring(render_instance_svg(instance))
        assert root.tag == f"{SVG_NS}svg"

    def test_grid_cells_drawn(self, instance):
        root = ET.fromstring(render_instance_svg(instance))
        rects = root.findall(f"{SVG_NS}rect")
        grid = instance.coverage.grid
        # background + grid cells + destination markers
        assert len(rects) >= grid.num_cells

    def test_every_sensing_task_drawn(self, instance):
        root = ET.fromstring(render_instance_svg(instance))
        circles = root.findall(f"{SVG_NS}circle")
        assert len(circles) >= instance.num_sensing_tasks

    def test_one_polyline_per_worker(self, instance):
        root = ET.fromstring(render_instance_svg(instance))
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == instance.num_workers


class TestSolutionSVG:
    def test_well_formed(self, solution):
        ET.fromstring(render_solution_svg(solution))

    def test_completed_tasks_highlighted(self, solution):
        svg = render_solution_svg(solution)
        assert svg.count("#2ca02c") == solution.num_completed

    def test_label_mentions_solver_and_objective(self, solution):
        svg = render_solution_svg(solution)
        assert solution.solver_name in svg
        assert f"{solution.objective:.3f}" in svg

    def test_routes_drawn_for_recruited_workers(self, solution):
        root = ET.fromstring(render_solution_svg(solution))
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == len(solution.routes)

    def test_scale_changes_canvas(self, solution):
        small = ET.fromstring(render_solution_svg(solution, scale=0.1))
        large = ET.fromstring(render_solution_svg(solution, scale=0.5))
        assert float(large.get("width")) > float(small.get("width"))

    def test_coordinates_within_canvas(self, solution):
        root = ET.fromstring(render_solution_svg(solution))
        width = float(root.get("width"))
        height = float(root.get("height"))
        for circle in root.findall(f"{SVG_NS}circle"):
            assert -1 <= float(circle.get("cx")) <= width + 1
            assert -1 <= float(circle.get("cy")) <= height + 1
