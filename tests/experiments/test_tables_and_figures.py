"""Tests for the table/figure generators and their text rendering."""

import pytest

from repro.experiments import (
    ABLATION_VARIANTS,
    figure5_ablation,
    render_case_study,
    render_figure5,
    render_grid,
    render_table,
    run_case_study,
    table1_time_window,
    table2_budget,
    table3_alpha,
)
from repro.experiments.case_study import (
    completion_heatmap,
    opportunistic_solution,
    route_heatmap,
)
from repro.experiments.pretrained import get_trained_policy

from .conftest import TINY_PRETRAIN

FAST_METHODS = ("RN", "TVPG")


class TestTables:
    def test_table1_structure(self, runner):
        results = table1_time_window(runner, datasets=("delivery",),
                                     windows=(30.0, 60.0),
                                     methods=FAST_METHODS)
        assert set(results) == {"delivery"}
        assert set(results["delivery"]) == {"Interval=30", "Interval=60"}
        for cell in results["delivery"].values():
            assert [r.method for r in cell] == list(FAST_METHODS)

    def test_table2_structure(self, runner):
        results = table2_budget(runner, datasets=("delivery",),
                                budgets=(200.0,), methods=FAST_METHODS)
        assert set(results["delivery"]) == {"Budget=200"}

    def test_table3_structure(self, runner):
        results = table3_alpha(runner, datasets=("delivery",),
                               alphas=(0.2, 0.8), methods=FAST_METHODS)
        assert set(results["delivery"]) == {"alpha=0.2", "alpha=0.8"}

    def test_budget_monotonicity(self, runner):
        # More budget -> no worse objective (paper Table II trend).
        results = table2_budget(runner, datasets=("delivery",),
                                budgets=(150.0, 400.0), methods=("TVPG",))
        low = results["delivery"]["Budget=150"][0].objective_mean
        high = results["delivery"]["Budget=400"][0].objective_mean
        assert high >= low - 1e-9

    def test_rendering(self, runner):
        results = table1_time_window(runner, datasets=("delivery",),
                                     windows=(30.0,), methods=FAST_METHODS)
        text = render_grid("Table I", results)
        assert "delivery" in text
        assert "RN" in text
        assert "Obj." in text

    def test_render_table_basic(self):
        text = render_table("T", ["c1"], {"m": [("1.0", "2 (s)")]})
        assert "T" in text
        assert "m" in text


class TestFigure5:
    def test_ablation_runs_all_variants(self, runner):
        results = figure5_ablation(runner, datasets=("delivery",))
        rows = results["delivery"]
        assert [r.method for r in rows] == list(ABLATION_VARIANTS)
        for result in rows:
            assert result.objective_mean >= 0.0

    def test_render(self, runner):
        results = figure5_ablation(runner, datasets=("delivery",))
        text = render_figure5(results)
        assert "w/o RL-AS" in text
        assert "#" in text

    def test_extended_fusion_variant_trains(self, runner):
        from repro.experiments.ablation import train_variant_policy

        policy = train_variant_policy("w/o Fusion", "delivery",
                                      runner.profile.pretrain,
                                      cache_dir=runner.cache_dir)
        assert not policy.net.task_selection.use_heuristic_fusion

    def test_unknown_variant_rejected(self, runner):
        from repro.experiments.ablation import train_variant_policy

        with pytest.raises(KeyError):
            train_variant_policy("w/o Everything", "delivery",
                                 runner.profile.pretrain)


class TestFigure6:
    @pytest.fixture
    def instance(self, runner):
        return runner.test_instances("delivery")[0]

    def test_opportunistic_solution_valid(self, instance):
        solution = opportunistic_solution(instance)
        assert solution.validate() == []
        assert solution.total_incentive == 0.0

    def test_opportunistic_tasks_fall_on_routes(self, instance):
        solution = opportunistic_solution(instance)
        tasks = getattr(solution, "opportunistic_tasks")
        grid = instance.coverage.grid
        route_cells = set()
        for route in solution.routes.values():
            for stop in route.tasks:
                route_cells.add(grid.cell_index(stop.location))
        for task in tasks:
            assert grid.cell_index(task.location) in route_cells

    def test_heatmap_shapes(self, instance):
        grid = instance.coverage.grid
        heat = completion_heatmap(instance, list(instance.sensing_tasks[:5]))
        assert heat.shape == (grid.nx, grid.ny)
        assert heat.sum() == 5

    def test_route_heatmap_counts_stops(self, instance):
        solution = opportunistic_solution(instance)
        heat = route_heatmap(instance, solution.routes)
        expected = sum(len(r.tasks) + 2 for r in solution.routes.values())
        assert heat.sum() == expected

    def test_case_study_smore_improves_coverage(self, runner, instance):
        policy = get_trained_policy("delivery", spec=TINY_PRETRAIN,
                                    cache_dir=runner.cache_dir)
        result = run_case_study(instance, policy)
        # The paper's headline: re-planning yields much better coverage.
        assert result.smore_phi >= result.baseline_phi

    def test_render_case_study(self, runner, instance):
        policy = get_trained_policy("delivery", spec=TINY_PRETRAIN,
                                    cache_dir=runner.cache_dir)
        text = render_case_study(run_case_study(instance, policy))
        assert "Figure 6" in text
        assert "(a) original routes" in text
        assert "(d) completion with SMORE" in text
