"""Tests for USMDW instances and sensing-task grid construction."""

import numpy as np
import pytest

from repro.core import (
    CoverageModel,
    Grid,
    InvalidInstanceError,
    Location,
    Region,
    SensingTask,
    USMDWInstance,
    Worker,
    make_sensing_grid_tasks,
)


@pytest.fixture
def grid():
    return Grid(Region(2000, 2400), 10, 12)


@pytest.fixture
def coverage(grid):
    return CoverageModel(grid, 240.0, 30.0, alpha=0.5)


def make_instance(coverage, workers=None, tasks=None, **kwargs):
    workers = workers if workers is not None else (
        Worker(1, Location(0, 0), Location(100, 100), 0.0, 240.0, ()),)
    tasks = tasks if tasks is not None else (
        SensingTask(1, Location(500, 500), 0.0, 30.0, 5.0),)
    defaults = dict(budget=300.0, mu=1.0, coverage=coverage)
    defaults.update(kwargs)
    return USMDWInstance(workers=workers, sensing_tasks=tasks, **defaults)


class TestMakeSensingGridTasks:
    def test_full_grid(self, grid):
        tasks = make_sensing_grid_tasks(grid, 240.0, 30.0)
        assert len(tasks) == 120 * 8

    def test_task_windows_tile_time_span(self, grid):
        tasks = make_sensing_grid_tasks(grid, 240.0, 60.0)
        starts = {t.tw_start for t in tasks}
        assert starts == {0.0, 60.0, 120.0, 180.0}
        assert all(t.tw_end - t.tw_start == 60.0 for t in tasks)

    def test_tasks_at_cell_centers(self, grid):
        tasks = make_sensing_grid_tasks(grid, 240.0, 240.0)
        cells = {grid.cell_of(t.location) for t in tasks}
        assert len(cells) == 120

    def test_density_subsamples(self, grid):
        rng = np.random.default_rng(0)
        tasks = make_sensing_grid_tasks(grid, 240.0, 30.0, density=0.25, rng=rng)
        assert len(tasks) == round(120 * 8 * 0.25)

    def test_density_deterministic_with_seed(self, grid):
        a = make_sensing_grid_tasks(grid, 240.0, 30.0, density=0.25,
                                    rng=np.random.default_rng(7))
        b = make_sensing_grid_tasks(grid, 240.0, 30.0, density=0.25,
                                    rng=np.random.default_rng(7))
        assert [t.location for t in a] == [t.location for t in b]

    def test_invalid_density(self, grid):
        with pytest.raises(ValueError):
            make_sensing_grid_tasks(grid, 240.0, 30.0, density=0.0)

    def test_unique_ids_with_offset(self, grid):
        tasks = make_sensing_grid_tasks(grid, 240.0, 120.0, start_id=1000)
        ids = [t.task_id for t in tasks]
        assert min(ids) == 1000
        assert len(set(ids)) == len(ids)

    def test_window_shorter_than_service_skipped(self, grid):
        # service time longer than the window -> no valid tasks.
        tasks = make_sensing_grid_tasks(grid, 240.0, 30.0, service_time=31.0)
        assert tasks == []


class TestUSMDWInstance:
    def test_basic_construction(self, coverage):
        instance = make_instance(coverage)
        assert instance.num_workers == 1
        assert instance.num_sensing_tasks == 1

    def test_lookup_by_id(self, coverage):
        instance = make_instance(coverage)
        assert instance.worker(1).worker_id == 1
        assert instance.sensing_task(1).task_id == 1

    def test_duplicate_worker_ids_rejected(self, coverage):
        workers = (Worker(1, Location(0, 0), Location(1, 1), 0, 240, ()),
                   Worker(1, Location(2, 2), Location(3, 3), 0, 240, ()))
        with pytest.raises(InvalidInstanceError):
            make_instance(coverage, workers=workers)

    def test_duplicate_task_ids_rejected(self, coverage):
        tasks = (SensingTask(1, Location(10, 10), 0, 30, 5),
                 SensingTask(1, Location(20, 20), 0, 30, 5))
        with pytest.raises(InvalidInstanceError):
            make_instance(coverage, tasks=tasks)

    def test_negative_budget_rejected(self, coverage):
        with pytest.raises(InvalidInstanceError):
            make_instance(coverage, budget=-1.0)

    def test_nonpositive_mu_rejected(self, coverage):
        with pytest.raises(InvalidInstanceError):
            make_instance(coverage, mu=0.0)

    def test_nonpositive_speed_rejected(self, coverage):
        with pytest.raises(InvalidInstanceError):
            make_instance(coverage, speed=0.0)

    def test_task_outside_region_rejected(self, coverage):
        tasks = (SensingTask(1, Location(5000, 5000), 0, 30, 5),)
        with pytest.raises(InvalidInstanceError):
            make_instance(coverage, tasks=tasks)

    def test_task_window_beyond_span_rejected(self, coverage):
        tasks = (SensingTask(1, Location(10, 10), 230, 260, 5),)
        with pytest.raises(InvalidInstanceError):
            make_instance(coverage, tasks=tasks)

    def test_describe_mentions_sizes(self, coverage):
        text = make_instance(coverage).describe()
        assert "|W|=1" in text
        assert "|S|=1" in text

    def test_workers_normalised_to_tuple(self, coverage):
        instance = make_instance(
            coverage,
            workers=[Worker(1, Location(0, 0), Location(1, 1), 0, 240, ())])
        assert isinstance(instance.workers, tuple)
