"""PackedInstance: interning, matrix/`math.hypot` parity, caching, bins."""

import math

import numpy as np
import pytest

from repro.core import (
    CoverageModel,
    Grid,
    Location,
    PackedInstance,
    Region,
    SensingTask,
    TravelTask,
    Worker,
    euclidean,
    packed_instance,
)
from repro.datasets.instances import InstanceOptions, generate_instances


def _worker(wid=0):
    return Worker(wid, Location(0, 0), Location(1200, 0), 0.0, 240.0,
                  (TravelTask(10 + wid, Location(400, 0), 10.0),
                   TravelTask(20 + wid, Location(800, 0), 10.0)))


def _sensing(task_id, x, y, tw=(0.0, 60.0), service=5.0):
    return SensingTask(task_id, Location(x, y), tw[0], tw[1], service)


class TestInterning:
    def test_shared_locations_deduplicate(self):
        # Three sensing tasks at one grid-cell center, plus a worker whose
        # travel task reuses that same point: one interned location.
        shared = (500.0, 700.0)
        tasks = [_sensing(100 + k, *shared, tw=(60.0 * k, 60.0 * k + 60.0))
                 for k in range(3)]
        worker = Worker(0, Location(0, 0), Location(1200, 0), 0.0, 240.0,
                        (TravelTask(10, Location(*shared), 10.0),))
        packed = PackedInstance([worker], tasks)
        # origin, destination, and the single shared point.
        assert packed.num_locations == 3
        assert len({int(i) for i in packed.sensing_loc}) == 1

    def test_sensing_arrays_mirror_tasks(self):
        tasks = [_sensing(100, 10, 20, tw=(30.0, 90.0), service=7.0),
                 _sensing(101, 30, 40, tw=(0.0, 60.0), service=5.0)]
        packed = PackedInstance([_worker()], tasks)
        for k, task in enumerate(tasks):
            assert packed.tw_start[k] == task.tw_start
            assert packed.tw_end[k] == task.tw_end
            assert packed.service[k] == task.service_time
            assert packed.latest_start[k] == task.latest_start
            row = packed.sensing_row(task.task_id)
            assert row == k


class TestDistances:
    def test_rows_match_math_hypot_exactly(self, rng=None):
        rng = np.random.default_rng(7)
        tasks = [_sensing(100 + k, float(rng.uniform(0, 2000)),
                          float(rng.uniform(0, 2400))) for k in range(12)]
        packed = PackedInstance([_worker()], tasks)
        n = packed.num_locations
        for i in range(n):
            row = packed.row(i)
            assert row[i] == 0.0
            for j in range(n):
                expected = math.hypot(packed.xs[i] - packed.xs[j],
                                      packed.ys[i] - packed.ys[j])
                # Bit-identical, not approximately equal: the matrix must
                # reproduce the object path's math.hypot to the last ulp.
                assert row[j] == expected
                assert packed.distance(i, j) == expected

    def test_distance_between_known_and_unknown(self):
        tasks = [_sensing(100, 250, 350)]
        packed = PackedInstance([_worker()], tasks)
        a, b = Location(250, 350), Location(0, 0)
        d = packed.distance_between(a, b)
        assert type(d) is float
        assert d == euclidean(a, b)
        # Unknown location: per-pair hypot fallback, same value contract.
        stranger = Location(-123.25, 987.5)
        d2 = packed.distance_between(stranger, a)
        assert type(d2) is float
        assert d2 == euclidean(stranger, a)

    def test_rows_are_lazy_and_cached(self):
        tasks = [_sensing(100 + k, 10.0 * k, 5.0 * k) for k in range(5)]
        packed = PackedInstance([_worker()], tasks)
        assert packed.num_cached_rows == 0
        first = packed.row(0)
        assert packed.num_cached_rows == 1
        assert packed.row(0) is first
        assert packed.nbytes() >= first.nbytes


class TestInstanceCache:
    def test_packed_instance_cached_per_instance(self):
        instance = generate_instances(
            "delivery", 1, seed=3,
            options=InstanceOptions(task_density=0.05))[0]
        packed = packed_instance(instance)
        assert packed_instance(instance) is packed
        assert len(packed.sensing_ids) == len(instance.sensing_tasks)
        for worker in instance.workers:
            origin, travel, dest = packed.worker_locs[worker.worker_id]
            assert packed.xs[origin] == worker.origin.x
            assert packed.ys[dest] == worker.destination.y
            assert len(travel) == len(worker.travel_tasks)


class TestPrecomputeBins:
    def test_matches_lazy_binning(self):
        grid = Grid(Region(2000, 2400), 10, 12)
        eager = CoverageModel(grid, time_span=240.0, slot_minutes=30.0)
        lazy = CoverageModel(grid, time_span=240.0, slot_minutes=30.0)
        rng = np.random.default_rng(11)
        tasks = []
        for k in range(80):
            slot = int(rng.integers(0, 8))
            tasks.append(_sensing(
                100 + k, float(rng.uniform(-10, 2010)),
                float(rng.uniform(-10, 2410)),
                tw=(slot * 30.0, slot * 30.0 + 30.0)))
        # Edge coordinates exercise both clamp directions.
        tasks.append(_sensing(500, 0.0, 0.0, tw=(0.0, 30.0)))
        tasks.append(_sensing(501, 2000.0, 2400.0, tw=(230.0, 240.0)))

        eager.precompute_bins(tasks)
        state = lazy.new_state()
        for task in tasks:
            assert eager._bin_cache[task] == state._bins(task)

    def test_skips_already_cached(self):
        grid = Grid(Region(100, 100), 4, 4)
        model = CoverageModel(grid, time_span=240.0, slot_minutes=60.0)
        task = _sensing(100, 50, 50)
        model.precompute_bins([task])
        sentinel = model._bin_cache[task]
        model.precompute_bins([task])
        assert model._bin_cache[task] is sentinel


class TestRowCacheBudget:
    """S2: the lazy travel-matrix row cache is LRU-bounded, bit-identical."""

    def _tasks(self, count=12):
        return [_sensing(100 + k, 10.0 * k, 5.0 * k, tw=(0.0, 120.0))
                for k in range(count)]

    def test_budget_derived_from_byte_limit(self):
        tasks = self._tasks()
        packed = PackedInstance([_worker()], tasks)
        row_bytes = 8 * packed.num_locations
        bounded = PackedInstance([_worker()], tasks,
                                 row_cache_bytes=3 * row_bytes)
        assert bounded.row_budget == 3
        assert packed.row_budget > bounded.row_budget

    def test_eviction_counts_and_cache_stays_bounded(self):
        tasks = self._tasks()
        packed = PackedInstance([_worker()], tasks,
                                 row_cache_bytes=3 * 8 * 16)
        for i in range(packed.num_locations):
            packed.row(i)
        assert packed.num_cached_rows <= packed.row_budget
        assert packed.row_builds == packed.num_locations
        assert packed.row_evictions == \
            packed.num_locations - packed.num_cached_rows
        assert packed.row_evictions > 0

    def test_hits_do_not_rebuild_or_evict(self):
        packed = PackedInstance([_worker()], self._tasks(),
                                 row_cache_bytes=3 * 8 * 16)
        packed.row(0)
        builds = packed.row_builds
        packed.row(0)
        packed.row(0)
        assert packed.row_builds == builds
        assert packed.row_evictions == 0

    def test_lru_keeps_recently_used_rows(self):
        packed = PackedInstance([_worker()], self._tasks(),
                                 row_cache_bytes=2 * 8 * 16)
        packed.row(0)
        packed.row(1)
        packed.row(0)          # refresh 0: 1 is now the LRU victim
        packed.row(2)          # evicts 1, not 0
        builds = packed.row_builds
        packed.row(0)
        assert packed.row_builds == builds      # 0 survived
        packed.row(1)
        assert packed.row_builds == builds + 1  # 1 was evicted

    def test_rebuilt_rows_bit_identical(self):
        tasks = self._tasks()
        unbounded = PackedInstance([_worker()], tasks)
        tiny = PackedInstance([_worker()], tasks, row_cache_bytes=1)
        assert tiny.row_budget == 1
        for i in range(tiny.num_locations):
            expected = unbounded.row(i)
            np.testing.assert_array_equal(tiny.row(i), expected)
        # Second sweep re-materialises every row after eviction churn.
        for i in range(tiny.num_locations):
            np.testing.assert_array_equal(tiny.row(i), unbounded.row(i))


class TestExportImport:
    """Zero-copy currency of the sharding pipeline."""

    def _packed(self):
        tasks = [_sensing(100 + k, 50.0 * k, 30.0 * k) for k in range(6)]
        return PackedInstance([_worker(0), _worker(1)], tasks), tasks

    def test_round_trip_is_bit_identical(self):
        packed, _ = self._packed()
        rebuilt = PackedInstance.from_arrays(
            [_worker(0), _worker(1)], packed.export_arrays())
        assert rebuilt.num_locations == packed.num_locations
        assert rebuilt.worker_locs == packed.worker_locs
        for i in range(packed.num_locations):
            np.testing.assert_array_equal(rebuilt.row(i), packed.row(i))

    def test_worker_subset_allowed(self):
        packed, _ = self._packed()
        rebuilt = PackedInstance.from_arrays([_worker(1)],
                                             packed.export_arrays())
        assert set(rebuilt.worker_locs) == {1}

    def test_unknown_worker_location_rejected(self):
        packed, _ = self._packed()
        stranger = Worker(9, Location(-5.0, -5.0), Location(1200, 0),
                          0.0, 240.0, ())
        with pytest.raises(ValueError, match="missing"):
            PackedInstance.from_arrays([stranger], packed.export_arrays())

    def test_export_shares_storage(self):
        packed, _ = self._packed()
        arrays = packed.export_arrays()
        assert arrays["xs"] is packed.xs
        assert set(arrays) == set(
            __import__("repro.core.packed", fromlist=["x"])
            .PACKED_ARRAY_NAMES)
