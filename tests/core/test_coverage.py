"""Tests for the hierarchical entropy-based data coverage (Definition 4)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CoverageModel,
    Grid,
    Location,
    Region,
    SensingTask,
    spatial_pyramid,
)


@pytest.fixture
def model():
    grid = Grid(Region(2000, 2400), 10, 12)
    return CoverageModel(grid, time_span=240.0, slot_minutes=30.0, alpha=0.5)


def task_at(task_id: int, x: float, y: float, slot: int = 0,
            slot_minutes: float = 30.0) -> SensingTask:
    return SensingTask(task_id, Location(x, y), slot * slot_minutes,
                       (slot + 1) * slot_minutes, 5.0)


class TestSpatialPyramid:
    def test_levels_halve(self):
        grid = Grid(Region(100, 100), 8, 8)
        levels = spatial_pyramid(grid)
        dims = [(g.nx, g.ny) for g in levels]
        assert dims == [(8, 8), (4, 4), (2, 2)]

    def test_root_excluded(self):
        grid = Grid(Region(100, 100), 4, 4)
        dims = [(g.nx, g.ny) for g in spatial_pyramid(grid)]
        assert (1, 1) not in dims

    def test_degenerate_grid_kept(self):
        grid = Grid(Region(100, 100), 1, 1)
        assert [(g.nx, g.ny) for g in spatial_pyramid(grid)] == [(1, 1)]

    def test_non_square(self):
        grid = Grid(Region(2000, 2400), 10, 12)
        dims = [(g.nx, g.ny) for g in spatial_pyramid(grid)]
        assert dims[0] == (10, 12)
        assert dims[-1][0] > 1 or dims[-1][1] > 1


class TestCoverageModel:
    def test_num_slots(self, model):
        assert model.num_slots == 8

    def test_slot_of(self, model):
        assert model.slot_of(task_at(1, 0, 0, slot=0)) == 0
        assert model.slot_of(task_at(1, 0, 0, slot=7)) == 7

    def test_invalid_alpha(self):
        grid = Grid(Region(100, 100), 2, 2)
        with pytest.raises(ValueError):
            CoverageModel(grid, 240.0, 30.0, alpha=1.5)

    def test_invalid_slot_minutes(self):
        grid = Grid(Region(100, 100), 2, 2)
        with pytest.raises(ValueError):
            CoverageModel(grid, 240.0, 0.0)

    def test_invalid_time_span(self):
        grid = Grid(Region(100, 100), 2, 2)
        with pytest.raises(ValueError):
            CoverageModel(grid, -5.0, 30.0)


class TestPhi:
    def test_empty_is_zero(self, model):
        assert model.phi([]) == 0.0

    def test_single_task_is_zero(self, model):
        # log2(1) = 0 and one task has zero entropy.
        assert model.phi([task_at(1, 100, 100)]) == pytest.approx(0.0)

    def test_phi_monotone_in_count_for_spread_tasks(self, model):
        tasks = [task_at(i, 100 + 200 * (i % 10), 100 + 200 * (i // 10),
                         slot=i % 8) for i in range(30)]
        values = [model.phi(tasks[:n]) for n in range(1, 31)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_balanced_beats_clustered(self, model):
        # Same count: spread across the region vs piled in one cell.
        spread = [task_at(i, 100 + 200 * (i % 10), 100 + 200 * (i // 10),
                          slot=i % 8) for i in range(20)]
        clustered = [task_at(i, 100, 100, slot=i % 8) for i in range(20)]
        assert model.phi(spread) > model.phi(clustered)

    def test_temporal_spread_alone_insufficient(self, model):
        # Tasks in one cell across all slots must still score low on
        # balance: spatial skew cannot hide behind temporal spread.
        one_cell = [task_at(i, 100, 100, slot=i % 8) for i in range(16)]
        two_cells_one_slot = [
            task_at(i, 100 + 200 * (i % 8), 100, slot=0) for i in range(16)]
        state = model.new_state()
        for t in one_cell:
            state.add(t)
        assert state.spatial_entropies()[0] == pytest.approx(0.0)
        assert state.temporal_entropy() == pytest.approx(3.0)

    def test_alpha_zero_counts_only(self):
        grid = Grid(Region(100, 100), 2, 2)
        model = CoverageModel(grid, 60.0, 30.0, alpha=0.0)
        clustered = [task_at(i, 10, 10, slot_minutes=30.0) for i in range(8)]
        assert model.phi(clustered) == pytest.approx(math.log2(8))

    def test_alpha_one_entropy_only(self):
        grid = Grid(Region(100, 100), 2, 2)
        model = CoverageModel(grid, 60.0, 30.0, alpha=1.0)
        clustered = [task_at(i, 10, 10) for i in range(8)]
        assert model.phi(clustered) == pytest.approx(0.0)


class TestLevelWeighting:
    def _state(self, scheme, tasks):
        grid = Grid(Region(2000, 2400), 10, 12)
        model = CoverageModel(grid, 240.0, 30.0, alpha=0.5,
                              level_weighting=scheme)
        state = model.new_state()
        for t in tasks:
            state.add(t)
        return state

    def test_invalid_scheme_rejected(self):
        grid = Grid(Region(100, 100), 2, 2)
        with pytest.raises(ValueError):
            CoverageModel(grid, 240.0, 30.0, level_weighting="magic")

    def test_weights_normalised(self):
        for scheme in ("mean", "capacity", "finest"):
            state = self._state(scheme, [])
            assert sum(state._weights) == pytest.approx(1.0)

    def test_mean_matches_plain_average(self):
        tasks = [task_at(i, 150 * i + 50, 100, slot=i % 8) for i in range(8)]
        state = self._state("mean", tasks)
        terms = state.spatial_entropies() + [state.temporal_entropy()]
        assert state.entropy() == pytest.approx(sum(terms) / len(terms))

    def test_capacity_emphasises_fine_level(self):
        # Clustered in one cell: fine entropy 0, coarse saturates late;
        # the capacity weighting (heavier on fine levels) scores lower.
        clustered = [task_at(i, 100, 100, slot=i % 8) for i in range(16)]
        mean_e = self._state("mean", clustered).entropy()
        cap_e = self._state("capacity", clustered).entropy()
        assert cap_e < mean_e

    def test_finest_ignores_coarse_levels(self):
        tasks = [task_at(i, 150 * i + 50, 100, slot=i % 8) for i in range(8)]
        state = self._state("finest", tasks)
        fine = state.spatial_entropies()[0]
        temporal = state.temporal_entropy()
        assert state.entropy() == pytest.approx((fine + temporal) / 2)

    def test_all_schemes_rank_balanced_above_clustered(self):
        spread = [task_at(i, 100 + 200 * (i % 10), 100 + 200 * (i // 10),
                          slot=i % 8) for i in range(20)]
        clustered = [task_at(i, 100, 100, slot=i % 8) for i in range(20)]
        for scheme in ("mean", "capacity", "finest"):
            high = self._state(scheme, spread).phi()
            low = self._state(scheme, clustered).phi()
            assert high > low, scheme


class TestCoverageState:
    def test_add_remove_roundtrip(self, model):
        state = model.new_state()
        tasks = [task_at(i, 150 * i + 50, 100, slot=i % 8) for i in range(8)]
        for t in tasks:
            state.add(t)
        phi_full = state.phi()
        extra = task_at(99, 1900, 2300, slot=3)
        state.add(extra)
        state.remove(extra)
        assert state.phi() == pytest.approx(phi_full)
        assert state.total == 8

    def test_remove_unknown_raises(self, model):
        state = model.new_state()
        with pytest.raises(KeyError):
            state.remove(task_at(1, 100, 100))

    def test_gain_matches_batch_difference(self, model):
        state = model.new_state()
        existing = [task_at(i, 100 + 200 * i, 100, slot=i % 8) for i in range(6)]
        for t in existing:
            state.add(t)
        candidate = task_at(50, 1500, 1900, slot=2)
        expected = model.phi(existing + [candidate]) - model.phi(existing)
        assert state.gain(candidate) == pytest.approx(expected)

    def test_gain_does_not_mutate(self, model):
        state = model.new_state()
        state.add(task_at(1, 100, 100))
        before = state.phi()
        state.gain(task_at(2, 500, 900))
        assert state.phi() == pytest.approx(before)
        assert state.total == 1

    def test_copy_is_independent(self, model):
        state = model.new_state()
        state.add(task_at(1, 100, 100))
        clone = state.copy()
        clone.add(task_at(2, 500, 500))
        assert state.total == 1
        assert clone.total == 2

    def test_entropy_of_uniform_distribution_max(self):
        grid = Grid(Region(100, 100), 2, 2)
        model = CoverageModel(grid, 60.0, 30.0)
        state = model.new_state()
        # One task per cell, split over both slots evenly: entropy of the
        # 2x2 level = 2 bits, temporal = 1 bit.
        k = 0
        for i in range(2):
            for j in range(2):
                for slot in range(2):
                    state.add(SensingTask(k, Location(25 + 50 * i, 25 + 50 * j),
                                          slot * 30.0, (slot + 1) * 30.0, 5.0))
                    k += 1
        assert state.spatial_entropies()[0] == pytest.approx(2.0)
        assert state.temporal_entropy() == pytest.approx(1.0)
        assert state.entropy() == pytest.approx((2.0 + 1.0) / 2)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 1999), st.floats(0, 2399),
                              st.integers(0, 7)), min_size=1, max_size=40))
    def test_incremental_matches_batch(self, coords):
        grid = Grid(Region(2000, 2400), 10, 12)
        model = CoverageModel(grid, 240.0, 30.0, alpha=0.5)
        tasks = [task_at(i, x, y, slot=s) for i, (x, y, s) in enumerate(coords)]
        state = model.new_state()
        for t in tasks:
            state.add(t)
        assert state.phi() == pytest.approx(model.phi(tasks))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 1999), st.floats(0, 2399),
                              st.integers(0, 7)), min_size=2, max_size=30))
    def test_gain_always_consistent(self, coords):
        grid = Grid(Region(2000, 2400), 10, 12)
        model = CoverageModel(grid, 240.0, 30.0, alpha=0.5)
        tasks = [task_at(i, x, y, slot=s) for i, (x, y, s) in enumerate(coords)]
        state = model.new_state()
        for t in tasks[:-1]:
            state.add(t)
        gain = state.gain(tasks[-1])
        state.add(tasks[-1])
        assert state.phi() == pytest.approx(model.phi(tasks))
        assert gain == pytest.approx(model.phi(tasks) - model.phi(tasks[:-1]))
