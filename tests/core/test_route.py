"""Tests for working routes and route simulation (paper Definition 5)."""

import pytest

from repro.core import (
    Location,
    SensingTask,
    TravelTask,
    Worker,
    WorkingRoute,
    simulate_route,
)

SPEED = 60.0


@pytest.fixture
def worker():
    return Worker(
        worker_id=1,
        origin=Location(0, 0),
        destination=Location(600, 0),
        earliest_departure=0.0,
        latest_arrival=120.0,
        travel_tasks=(TravelTask(10, Location(300, 0), 10.0),),
    )


class TestSimulateRoute:
    def test_empty_route(self, worker):
        timing = simulate_route(worker, [], speed=SPEED)
        # Straight line 600m at 60 m/min = 10 minutes.
        assert timing.route_travel_time == pytest.approx(10.0)
        assert timing.feasible

    def test_travel_task_route(self, worker):
        timing = simulate_route(worker, list(worker.travel_tasks), speed=SPEED)
        # 300m + service 10 + 300m = 5 + 10 + 5 = 20 minutes.
        assert timing.route_travel_time == pytest.approx(20.0)
        assert timing.feasible
        assert timing.stops[0].arrival == pytest.approx(5.0)
        assert timing.stops[0].finish == pytest.approx(15.0)

    def test_waiting_for_sensing_window(self, worker):
        sensing = SensingTask(20, Location(300, 0), 30.0, 60.0, 5.0)
        timing = simulate_route(worker, [sensing], speed=SPEED)
        stop = timing.stops[0]
        assert stop.arrival == pytest.approx(5.0)
        assert stop.service_start == pytest.approx(30.0)   # waited
        assert stop.waiting_time == pytest.approx(25.0)
        assert timing.route_travel_time == pytest.approx(40.0)
        assert timing.feasible

    def test_missed_window_infeasible(self, worker):
        # Window closes before the worker can arrive.
        sensing = SensingTask(20, Location(600, 0), 0.0, 8.0, 5.0)
        timing = simulate_route(worker, [sensing], speed=SPEED)
        assert not timing.feasible
        assert timing.violated_at == 0

    def test_late_arrival_infeasible(self, worker):
        sensing = SensingTask(20, Location(300, 1200), 0.0, 240.0, 5.0)
        # Long detour: 0->(300,1200) is ~20.6 min, plus return: exceeds 120?
        timing = simulate_route(worker, [sensing], speed=SPEED)
        assert timing.route_travel_time > 0
        # The detour is feasible in time windows but check total:
        # distance 0->(300,1200)=1237m=20.6min, 5 service,
        # (300,1200)->(600,0)=1237m=20.6min -> about 46min: feasible.
        assert timing.feasible

    def test_latest_arrival_violation_flagged_at_end(self):
        worker = Worker(1, Location(0, 0), Location(600, 0), 0.0, 9.0, ())
        timing = simulate_route(worker, [], speed=SPEED)
        assert not timing.feasible
        assert timing.violated_at == 0  # index len(tasks) == 0

    def test_departure_override(self, worker):
        timing = simulate_route(worker, [], speed=SPEED, departure=50.0)
        assert timing.departure == pytest.approx(50.0)
        assert timing.arrival_at_destination == pytest.approx(60.0)

    def test_total_service_and_waiting(self, worker):
        sensing = SensingTask(20, Location(300, 0), 30.0, 60.0, 5.0)
        timing = simulate_route(worker, [sensing, *worker.travel_tasks],
                                speed=SPEED)
        assert timing.total_service_time == pytest.approx(15.0)
        assert timing.total_waiting_time == pytest.approx(25.0)


class TestWorkingRoute:
    def test_task_partition(self, worker):
        sensing = SensingTask(20, Location(100, 0), 0.0, 120.0, 5.0)
        route = WorkingRoute(worker, (sensing, *worker.travel_tasks))
        assert route.sensing_tasks == (sensing,)
        assert route.travel_tasks == worker.travel_tasks

    def test_covers_all_travel_tasks(self, worker):
        complete = WorkingRoute(worker, worker.travel_tasks)
        assert complete.covers_all_travel_tasks()
        missing = WorkingRoute(worker, ())
        assert not missing.covers_all_travel_tasks()

    def test_feasible_requires_travel_tasks(self, worker):
        # Time-feasible but missing a mandatory stop.
        route = WorkingRoute(worker, ())
        assert route.simulate().feasible
        assert not route.feasible

    def test_with_task_inserted(self, worker):
        sensing = SensingTask(20, Location(100, 0), 0.0, 120.0, 5.0)
        base = WorkingRoute(worker, worker.travel_tasks)
        extended = base.with_task_inserted(sensing, 0)
        assert extended.tasks[0] is sensing
        assert len(extended.tasks) == 2
        # Original unchanged (immutability).
        assert len(base.tasks) == 1

    def test_without_task(self, worker):
        sensing = SensingTask(20, Location(100, 0), 0.0, 120.0, 5.0)
        route = WorkingRoute(worker, (sensing, *worker.travel_tasks))
        removed = route.without_task(sensing)
        assert sensing not in removed.tasks

    def test_route_travel_time_matches_simulation(self, worker):
        route = WorkingRoute(worker, worker.travel_tasks)
        assert route.route_travel_time == pytest.approx(
            route.simulate().route_travel_time)

    def test_tasks_normalised_to_tuple(self, worker):
        route = WorkingRoute(worker, list(worker.travel_tasks))
        assert isinstance(route.tasks, tuple)


class TestRouteTravelTimeDefinition:
    """rtt must equal travel + waiting + service exactly (Equation 1)."""

    def test_decomposition(self, worker):
        sensing = SensingTask(20, Location(300, 0), 30.0, 60.0, 5.0)
        tasks = [sensing, *worker.travel_tasks]
        timing = simulate_route(worker, tasks, speed=SPEED)
        travel = (Location(0, 0).distance_to(Location(300, 0))
                  + Location(300, 0).distance_to(Location(300, 0))
                  + Location(300, 0).distance_to(Location(600, 0))) / SPEED
        expected = travel + timing.total_waiting_time + timing.total_service_time
        assert timing.route_travel_time == pytest.approx(expected)
