"""Property-based tests on core routing invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Location,
    SensingTask,
    TravelTask,
    Worker,
    simulate_route,
    travel_time,
)

SPEED = 60.0


def build_case(seed: int, num_tasks: int):
    rng = np.random.default_rng(seed)

    def loc():
        return Location(float(rng.uniform(0, 2000)), float(rng.uniform(0, 2400)))

    tasks = []
    for k in range(num_tasks):
        if rng.random() < 0.5:
            tasks.append(TravelTask(k, loc(), float(rng.uniform(0, 15))))
        else:
            tw_start = float(rng.uniform(0, 180))
            tw_len = float(rng.uniform(10, 120))
            tasks.append(SensingTask(k, loc(), tw_start, tw_start + tw_len,
                                     min(5.0, tw_len)))
    worker = Worker(0, loc(), loc(), 0.0, float(rng.uniform(60, 400)), ())
    return worker, tasks


class TestSimulationInvariants:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 6))
    def test_rtt_at_least_direct_time(self, seed, n):
        worker, tasks = build_case(seed, n)
        timing = simulate_route(worker, tasks, speed=SPEED)
        direct = travel_time(worker.origin, worker.destination, speed=SPEED)
        assert timing.route_travel_time >= direct - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 6))
    def test_removing_task_never_lengthens_route(self, seed, n):
        worker, tasks = build_case(seed, n)
        full = simulate_route(worker, tasks, speed=SPEED)
        for drop in range(n):
            reduced = simulate_route(
                worker, tasks[:drop] + tasks[drop + 1:], speed=SPEED)
            assert (reduced.arrival_at_destination
                    <= full.arrival_at_destination + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 6))
    def test_removing_task_preserves_feasibility(self, seed, n):
        # Earlier arrivals can only help: waiting absorbs them, windows
        # that were met stay met.
        worker, tasks = build_case(seed, n)
        full = simulate_route(worker, tasks, speed=SPEED)
        if not full.feasible:
            return
        for drop in range(n):
            reduced = simulate_route(
                worker, tasks[:drop] + tasks[drop + 1:], speed=SPEED)
            assert reduced.feasible

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 6))
    def test_rtt_decomposition(self, seed, n):
        """Equation 1: rtt = travel + waiting + service, exactly."""
        worker, tasks = build_case(seed, n)
        timing = simulate_route(worker, tasks, speed=SPEED)
        locations = ([worker.origin] + [t.location for t in tasks]
                     + [worker.destination])
        travel = sum(travel_time(a, b, speed=SPEED)
                     for a, b in zip(locations, locations[1:]))
        expected = (travel + timing.total_waiting_time
                    + timing.total_service_time)
        assert timing.route_travel_time == pytest.approx(expected)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 5),
           st.floats(0.0, 100.0))
    def test_later_departure_never_earlier_arrival(self, seed, n, delay):
        worker, tasks = build_case(seed, n)
        base = simulate_route(worker, tasks, speed=SPEED)
        delayed = simulate_route(worker, tasks, speed=SPEED,
                                 departure=worker.earliest_departure + delay)
        assert (delayed.arrival_at_destination
                >= base.arrival_at_destination - 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 6))
    def test_stops_are_causally_ordered(self, seed, n):
        worker, tasks = build_case(seed, n)
        timing = simulate_route(worker, tasks, speed=SPEED)
        clock = timing.departure
        for stop in timing.stops:
            assert stop.arrival >= clock - 1e-9
            assert stop.service_start >= stop.arrival - 1e-9
            assert stop.finish >= stop.service_start - 1e-9
            clock = stop.finish


class TestInsertionInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 4))
    def test_insertion_result_contains_new_task(self, seed, n):
        from repro.tsptw import cheapest_insertion_position

        worker, tasks = build_case(seed, n)
        new_task = SensingTask(99, Location(1000, 1200), 0.0, 240.0, 5.0)
        found = cheapest_insertion_position(worker, tasks, new_task, SPEED)
        if found is None:
            return
        position, rtt = found
        assert 0 <= position <= len(tasks)
        combined = tasks[:position] + [new_task] + tasks[position:]
        timing = simulate_route(worker, combined, speed=SPEED)
        assert timing.feasible
        assert timing.route_travel_time == pytest.approx(rtt)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 4))
    def test_insertion_rtt_not_below_base(self, seed, n):
        from repro.tsptw import cheapest_insertion_position

        worker, tasks = build_case(seed, n)
        base = simulate_route(worker, tasks, speed=SPEED)
        if not base.feasible:
            return
        new_task = SensingTask(99, Location(500, 700), 0.0, 240.0, 5.0)
        found = cheapest_insertion_position(worker, tasks, new_task, SPEED)
        if found is not None:
            assert found[1] >= base.route_travel_time - 1e-9
