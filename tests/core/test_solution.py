"""Tests for the Solution container and its constraint validator."""

import pytest

from repro.core import (
    CoverageModel,
    Grid,
    IncentiveModel,
    Location,
    Region,
    SensingTask,
    Solution,
    TravelTask,
    USMDWInstance,
    Worker,
    WorkingRoute,
)


@pytest.fixture
def instance():
    grid = Grid(Region(2000, 2400), 10, 12)
    coverage = CoverageModel(grid, 240.0, 30.0)
    workers = (
        Worker(1, Location(0, 0), Location(600, 0), 0.0, 240.0,
               (TravelTask(10, Location(300, 0), 10.0),)),
        Worker(2, Location(0, 100), Location(600, 100), 0.0, 240.0, ()),
    )
    tasks = (
        SensingTask(100, Location(150, 0), 0.0, 120.0, 5.0),
        SensingTask(101, Location(450, 0), 0.0, 120.0, 5.0),
    )
    return USMDWInstance(workers=workers, sensing_tasks=tasks,
                         budget=300.0, mu=1.0, coverage=coverage)


def solution_with(instance, tasks_for_w1):
    worker = instance.worker(1)
    route = WorkingRoute(worker, (tasks_for_w1[0], *worker.travel_tasks,
                                  *tasks_for_w1[1:]))
    return Solution(instance, routes={1: route}, incentives={1: 10.0},
                    solver_name="test")


class TestSolution:
    def test_completed_tasks(self, instance):
        solution = solution_with(instance, [instance.sensing_task(100)])
        assert [t.task_id for t in solution.completed_tasks] == [100]

    def test_objective_matches_coverage(self, instance):
        solution = solution_with(instance, [instance.sensing_task(100)])
        assert solution.objective == pytest.approx(
            instance.coverage.phi(solution.completed_tasks))

    def test_budget_accounting(self, instance):
        solution = solution_with(instance, [instance.sensing_task(100)])
        assert solution.total_incentive == 10.0
        assert solution.budget_remaining == 290.0

    def test_empty_solution_valid(self, instance):
        solution = Solution(instance)
        assert solution.is_valid()
        assert solution.objective == 0.0

    def test_summary_format(self, instance):
        text = solution_with(instance, [instance.sensing_task(100)]).summary()
        assert "phi=" in text
        assert "test" in text


class TestValidation:
    def test_valid_solution(self, instance):
        solution = solution_with(instance, [instance.sensing_task(100)])
        assert solution.validate() == []

    def test_detects_missing_travel_task(self, instance):
        worker = instance.worker(1)
        route = WorkingRoute(worker, (instance.sensing_task(100),))
        solution = Solution(instance, routes={1: route}, incentives={1: 5.0})
        problems = solution.validate()
        assert any("travel tasks" in p for p in problems)

    def test_detects_duplicate_completion(self, instance):
        task = instance.sensing_task(100)
        w1, w2 = instance.worker(1), instance.worker(2)
        r1 = WorkingRoute(w1, (task, *w1.travel_tasks))
        r2 = WorkingRoute(w2, (task,))
        solution = Solution(instance, routes={1: r1, 2: r2},
                            incentives={1: 1.0, 2: 1.0})
        problems = solution.validate()
        assert any("multiple workers" in p for p in problems)

    def test_detects_budget_overrun(self, instance):
        solution = solution_with(instance, [instance.sensing_task(100)])
        solution.incentives[1] = 301.0
        problems = solution.validate()
        assert any("budget exceeded" in p for p in problems)

    def test_detects_time_violation(self, instance):
        # Worker 2 route with a window that closed long before arrival.
        late = SensingTask(999, Location(600, 100), 0.0, 8.0, 5.0)
        # not in the instance's task set, but validation only checks timing
        w2 = instance.worker(2)
        route = WorkingRoute(w2, (late,))
        solution = Solution(instance, routes={2: route}, incentives={2: 0.0})
        problems = solution.validate()
        assert any("time constraints" in p for p in problems)

    def test_incentive_cross_check(self, instance):
        model = IncentiveModel(mu=1.0)
        model.set_base_rtt(instance.worker(1), 20.0)
        solution = solution_with(instance, [instance.sensing_task(100)])
        rtt = solution.routes[1].route_travel_time
        solution.incentives[1] = model.incentive(instance.worker(1), rtt)
        assert solution.validate(model) == []
        solution.incentives[1] += 5.0
        assert any("incentive" in p for p in solution.validate(model))
