"""Tests for the incentive model (paper Definition 6)."""

import pytest

from repro.core import IncentiveModel, Location, Worker


@pytest.fixture
def worker():
    return Worker(1, Location(0, 0), Location(600, 0), 0.0, 120.0, ())


class TestIncentiveModel:
    def test_incentive_proportional_to_extra_time(self, worker):
        model = IncentiveModel(mu=2.0)
        model.set_base_rtt(worker, 10.0)
        assert model.incentive(worker, 25.0) == pytest.approx(30.0)

    def test_zero_extra_time_zero_incentive(self, worker):
        model = IncentiveModel(mu=1.0)
        model.set_base_rtt(worker, 10.0)
        assert model.incentive(worker, 10.0) == 0.0

    def test_never_negative(self, worker):
        # Approximate base solvers can make rtt < base; clamp at zero.
        model = IncentiveModel(mu=1.0)
        model.set_base_rtt(worker, 10.0)
        assert model.incentive(worker, 9.0) == 0.0

    def test_base_rtt_fn_called_once(self, worker):
        calls = []

        def base_fn(w):
            calls.append(w.worker_id)
            return 10.0

        model = IncentiveModel(mu=1.0, base_rtt_fn=base_fn)
        model.incentive(worker, 20.0)
        model.incentive(worker, 30.0)
        assert calls == [1]

    def test_missing_base_raises(self, worker):
        model = IncentiveModel(mu=1.0)
        with pytest.raises(ValueError):
            model.base_rtt(worker)

    def test_set_base_overrides_fn(self, worker):
        model = IncentiveModel(mu=1.0, base_rtt_fn=lambda w: 999.0)
        model.set_base_rtt(worker, 10.0)
        assert model.base_rtt(worker) == 10.0

    def test_mu_default_matches_paper(self):
        assert IncentiveModel().mu == 1.0
