"""Tests for the per-solve performance counters (``repro.core.perf``)."""

import pytest

from repro.core.perf import PerfCounters


def _sample():
    return PerfCounters(planner_calls=10, init_planner_calls=4,
                        backend_calls=3, cache_hits=6, cache_misses=4,
                        cache_size=5, cache_evictions=1, init_time=0.5,
                        selection_time=1.5, rollouts=2)


class TestDerived:
    def test_cache_hit_rate(self):
        assert _sample().cache_hit_rate == pytest.approx(0.6)
        assert PerfCounters().cache_hit_rate == 0.0

    def test_total_time(self):
        assert _sample().total_time == pytest.approx(2.0)


class TestMerge:
    def test_additive_fields_sum(self):
        merged = _sample().merge(_sample())
        assert merged.planner_calls == 20
        assert merged.backend_calls == 6
        assert merged.init_time == pytest.approx(1.0)
        assert merged.rollouts == 4

    def test_cache_size_keeps_maximum(self):
        a = PerfCounters(cache_size=3)
        a.merge(PerfCounters(cache_size=9))
        a.merge(PerfCounters(cache_size=2))
        assert a.cache_size == 9


class TestDiff:
    def test_baseline_plus_diff_reproduces(self):
        baseline = PerfCounters(planner_calls=5, cache_hits=2, cache_size=3,
                                init_time=0.25)
        current = _sample()
        delta = current.diff(baseline)
        rebuilt = PerfCounters.from_dict(baseline.to_dict()).merge(delta)
        assert rebuilt == current

    def test_diff_of_self_is_zero_except_gauge(self):
        current = _sample()
        delta = current.diff(current)
        assert delta.planner_calls == 0
        assert delta.backend_calls == 0
        assert delta.init_time == 0.0
        # cache_size merges by max, so the delta carries the current value.
        assert delta.cache_size == current.cache_size


class TestDictRoundTrip:
    def test_to_from_dict(self):
        perf = _sample()
        assert PerfCounters.from_dict(perf.to_dict()) == perf

    def test_from_dict_ignores_derived_and_unknown_keys(self):
        payload = _sample().to_dict()
        assert "cache_hit_rate" in payload  # derived key present in dumps
        payload["not_a_field"] = 123
        assert PerfCounters.from_dict(payload) == _sample()


class TestSummary:
    def test_backend_calls_shown_when_nonzero(self):
        assert "backend_calls=3" in _sample().summary()

    def test_backend_calls_hidden_when_zero(self):
        assert "backend_calls" not in PerfCounters(planner_calls=1).summary()
