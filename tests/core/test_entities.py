"""Tests for TravelTask, SensingTask and Worker (paper Definitions 1-3)."""

import pytest

from repro.core import Location, SensingTask, TravelTask, Worker


class TestTravelTask:
    def test_construction(self):
        task = TravelTask(1, Location(10, 20), 10.0)
        assert task.task_id == 1
        assert task.service_time == 10.0

    def test_negative_service_time_rejected(self):
        with pytest.raises(ValueError):
            TravelTask(1, Location(0, 0), -1.0)

    def test_hashable(self):
        task = TravelTask(1, Location(0, 0), 5.0)
        assert task in {task}


class TestSensingTask:
    def test_construction(self):
        task = SensingTask(1, Location(0, 0), 30.0, 60.0, 5.0)
        assert task.tw_start == 30.0
        assert task.latest_start == 55.0

    def test_window_shorter_than_service_rejected(self):
        with pytest.raises(ValueError):
            SensingTask(1, Location(0, 0), 0.0, 4.0, 5.0)

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            SensingTask(1, Location(0, 0), 0.0, 30.0, -1.0)

    def test_can_start_at_window_boundaries(self):
        task = SensingTask(1, Location(0, 0), 30.0, 60.0, 5.0)
        assert task.can_start_at(30.0)
        assert task.can_start_at(55.0)
        assert not task.can_start_at(55.1)
        assert not task.can_start_at(29.9)

    def test_earliest_completion_waits(self):
        task = SensingTask(1, Location(0, 0), 30.0, 60.0, 5.0)
        # Arrive early: wait until tw_start, then sense.
        assert task.earliest_completion(10.0) == pytest.approx(35.0)

    def test_earliest_completion_on_time(self):
        task = SensingTask(1, Location(0, 0), 30.0, 60.0, 5.0)
        assert task.earliest_completion(40.0) == pytest.approx(45.0)

    def test_earliest_completion_too_late(self):
        task = SensingTask(1, Location(0, 0), 30.0, 60.0, 5.0)
        assert task.earliest_completion(56.0) is None

    def test_sensing_period_must_fit_window(self):
        # Definition 3: t + tau <= tw_e, i.e. arrival at exactly
        # tw_e - tau still works, any later does not.
        task = SensingTask(1, Location(0, 0), 0.0, 30.0, 10.0)
        assert task.earliest_completion(20.0) == pytest.approx(30.0)
        assert task.earliest_completion(20.1) is None


class TestWorker:
    def make_worker(self, **kwargs):
        defaults = dict(
            worker_id=1, origin=Location(0, 0), destination=Location(100, 0),
            earliest_departure=0.0, latest_arrival=100.0,
            travel_tasks=(TravelTask(10, Location(50, 0), 10.0),))
        defaults.update(kwargs)
        return Worker(**defaults)

    def test_time_budget(self):
        worker = self.make_worker(earliest_departure=30.0, latest_arrival=90.0)
        assert worker.time_budget == pytest.approx(60.0)

    def test_invalid_time_order_rejected(self):
        with pytest.raises(ValueError):
            self.make_worker(earliest_departure=100.0, latest_arrival=50.0)

    def test_travel_tasks_normalised_to_tuple(self):
        worker = self.make_worker(
            travel_tasks=[TravelTask(10, Location(1, 1), 5.0)])
        assert isinstance(worker.travel_tasks, tuple)

    def test_num_travel_tasks(self):
        assert self.make_worker().num_travel_tasks == 1

    def test_all_locations_order(self):
        worker = self.make_worker()
        locations = worker.all_locations()
        assert locations[0] == worker.origin
        assert locations[-1] == worker.destination
        assert len(locations) == 3

    def test_worker_with_no_travel_tasks(self):
        worker = self.make_worker(travel_tasks=())
        assert worker.num_travel_tasks == 0
        assert len(worker.all_locations()) == 2
