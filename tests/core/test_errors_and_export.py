"""Tests for the error hierarchy and the Solution JSON export."""

import json

import pytest

from repro.core import (
    BudgetExceededError,
    CoverageModel,
    Grid,
    InfeasibleRouteError,
    InvalidInstanceError,
    Location,
    Region,
    ReproError,
    SensingTask,
    Solution,
    TravelTask,
    USMDWInstance,
    Worker,
    WorkingRoute,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (InvalidInstanceError, InfeasibleRouteError,
                    BudgetExceededError):
            assert issubclass(exc, ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise InvalidInstanceError("bad instance")


@pytest.fixture
def instance():
    grid = Grid(Region(1000, 1000), 4, 4)
    coverage = CoverageModel(grid, 240.0, 60.0)
    worker = Worker(1, Location(0, 0), Location(900, 0), 0.0, 240.0,
                    (TravelTask(10, Location(400, 0), 10.0),))
    task = SensingTask(100, Location(600, 0), 0.0, 120.0, 5.0)
    return USMDWInstance(workers=(worker,), sensing_tasks=(task,),
                         budget=100.0, mu=1.0, coverage=coverage)


class TestSolutionExport:
    def _solution(self, instance):
        worker = instance.worker(1)
        task = instance.sensing_task(100)
        route = WorkingRoute(worker, (worker.travel_tasks[0], task))
        return Solution(instance, routes={1: route}, incentives={1: 7.5},
                        solver_name="export-test", wall_time=0.25)

    def test_serialisable(self, instance):
        payload = self._solution(instance).to_dict()
        json.dumps(payload)  # must not raise

    def test_top_level_fields(self, instance):
        payload = self._solution(instance).to_dict()
        assert payload["solver"] == "export-test"
        assert payload["completed_tasks"] == [100]
        assert payload["total_incentive"] == 7.5
        assert payload["budget"] == 100.0

    def test_stops_are_ordered_and_typed(self, instance):
        payload = self._solution(instance).to_dict()
        stops = payload["workers"]["1"]["stops"]
        assert [s["kind"] for s in stops] == ["travel", "sensing"]
        assert stops[0]["finish"] <= stops[1]["arrival"] + 1e-9

    def test_timings_consistent_with_simulation(self, instance):
        solution = self._solution(instance)
        payload = solution.to_dict()
        timing = solution.routes[1].simulate()
        assert payload["workers"]["1"]["arrival"] == pytest.approx(
            timing.arrival_at_destination)

    def test_empty_solution(self, instance):
        payload = Solution(instance, solver_name="empty").to_dict()
        assert payload["workers"] == {}
        assert payload["completed_tasks"] == []
        assert payload["objective"] == 0.0
