"""Tests for spatial primitives: locations, regions, grids, travel time."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DEFAULT_SPEED, Grid, Location, Region, euclidean, travel_time


class TestLocation:
    def test_distance_is_euclidean(self):
        assert Location(0, 0).distance_to(Location(3, 4)) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a, b = Location(1, 2), Location(7, -3)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_travel_time_uses_speed(self):
        t = Location(0, 0).travel_time_to(Location(120, 0), speed=60.0)
        assert t == pytest.approx(2.0)

    def test_default_speed_is_papers(self):
        assert DEFAULT_SPEED == 60.0
        assert travel_time(Location(0, 0), Location(60, 0)) == pytest.approx(1.0)

    def test_as_array(self):
        arr = Location(1.5, 2.5).as_array()
        assert arr.tolist() == [1.5, 2.5]

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Location(0, 0).x = 5

    @given(st.floats(-1e4, 1e4), st.floats(-1e4, 1e4),
           st.floats(-1e4, 1e4), st.floats(-1e4, 1e4))
    def test_triangle_inequality(self, x1, y1, x2, y2):
        a, b, origin = Location(x1, y1), Location(x2, y2), Location(0, 0)
        assert euclidean(a, b) <= euclidean(a, origin) + euclidean(origin, b) + 1e-6


class TestRegion:
    def test_contains_inside(self):
        region = Region(100, 200)
        assert region.contains(Location(50, 150))

    def test_contains_boundary(self):
        region = Region(100, 200)
        assert region.contains(Location(0, 0))
        assert region.contains(Location(100, 200))

    def test_not_contains_outside(self):
        region = Region(100, 200)
        assert not region.contains(Location(-1, 50))
        assert not region.contains(Location(50, 201))

    def test_clamp(self):
        region = Region(100, 100)
        clamped = region.clamp(Location(-10, 150))
        assert clamped == Location(0, 100)

    def test_clamp_noop_inside(self):
        region = Region(100, 100)
        assert region.clamp(Location(40, 60)) == Location(40, 60)

    def test_area(self):
        assert Region(10, 20).area == 200


class TestGrid:
    @pytest.fixture
    def grid(self):
        return Grid(Region(2000, 2400), 10, 12)

    def test_num_cells(self, grid):
        assert grid.num_cells == 120

    def test_cell_sizes(self, grid):
        assert grid.cell_width == pytest.approx(200.0)
        assert grid.cell_height == pytest.approx(200.0)

    def test_cell_of_origin(self, grid):
        assert grid.cell_of(Location(0, 0)) == (0, 0)

    def test_cell_of_far_corner_clamped(self, grid):
        assert grid.cell_of(Location(2000, 2400)) == (9, 11)

    def test_cell_of_interior(self, grid):
        assert grid.cell_of(Location(450, 450)) == (2, 2)

    def test_cell_index_row_major(self, grid):
        assert grid.cell_index(Location(0, 0)) == 0
        assert grid.cell_index(Location(250, 50)) == 12  # cell (1, 0)

    def test_cell_center_roundtrip(self, grid):
        for i, j in [(0, 0), (5, 7), (9, 11)]:
            center = grid.cell_center(i, j)
            assert grid.cell_of(center) == (i, j)

    def test_cell_center_out_of_range(self, grid):
        with pytest.raises(IndexError):
            grid.cell_center(10, 0)

    def test_all_cells_complete(self, grid):
        cells = grid.all_cells()
        assert len(cells) == 120
        assert len(set(cells)) == 120

    def test_coarsen_halves(self, grid):
        coarse = grid.coarsen()
        assert (coarse.nx, coarse.ny) == (5, 6)

    def test_coarsen_floor_at_one(self):
        grid = Grid(Region(100, 100), 1, 1)
        coarse = grid.coarsen()
        assert (coarse.nx, coarse.ny) == (1, 1)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Grid(Region(10, 10), 0, 5)

    @given(st.floats(0, 2000), st.floats(0, 2400))
    def test_cell_of_always_valid(self, x, y):
        grid = Grid(Region(2000, 2400), 10, 12)
        i, j = grid.cell_of(Location(x, y))
        assert 0 <= i < 10
        assert 0 <= j < 12
