"""Terminal dashboard: JSONL tailing and frame rendering."""

import json

import pytest

from repro.obs.dashboard import main, render_dashboard, tail_stats
from repro.obs.metrics import METRICS_SCHEMA_VERSION


def _stats(requests=100, with_slo=True):
    stats = {
        "type": "serving_stats",
        "schema_version": METRICS_SCHEMA_VERSION,
        "ts_monotonic": 12.5,
        "requests": requests, "responses": requests - 6,
        "shed_deadline": 4, "rejected_overload": 1, "errors": 1,
        "queue_depth": 3, "queue_depth_peak": 12,
        "sustained_req_per_s": 42.5,
        "latency_ms": {"count": 94, "p50": 10.0, "p95": 30.0, "p99": 50.0,
                       "mean": 12.0, "min": 1.0, "max": 55.0},
        "batch_size": {"count": 20, "mean": 4.7, "max": 8.0,
                       "min": 1.0, "p50": 5.0, "p95": 8.0, "p99": 8.0},
        "stages": {
            "admission_wait_ms": {"count": 94, "p50": 1.0, "p99": 5.0},
            "coalesce_wait_ms": {"count": 94, "p50": 0.5, "p99": 2.0},
            "execute_ms": {"count": 20, "p50": 8.0, "p99": 20.0},
            "traces_retained": 94,
        },
        "engine": {"backend": "reference", "warm_instances": 8,
                   "env_hits": 86, "env_misses": 8,
                   "statics_hits": 86, "statics_misses": 8},
    }
    if with_slo:
        stats["slo"] = {
            "window_s": 60.0, "requests": 94,
            "latency_ms": {"count": 94, "p50": 10.0, "p95": 30.0,
                           "p99": 50.0},
            "budget_used": 0.6, "alerts_active": ["error_budget"],
            "alerts_fired": 2, "error_rate": 0.06,
        }
    return stats


class TestTail:
    def test_missing_file_returns_none(self, tmp_path):
        assert tail_stats(tmp_path / "nope.jsonl") is None

    def test_returns_latest_serving_stats(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps(_stats(requests=10)) + "\n")
            fh.write(json.dumps({"type": "metrics"}) + "\n")
            fh.write(json.dumps(_stats(requests=20)) + "\n")
        latest = tail_stats(path)
        assert latest["requests"] == 20

    def test_incremental_offset(self, tmp_path):
        path = tmp_path / "m.jsonl"
        state = {}
        with open(path, "w") as fh:
            fh.write(json.dumps(_stats(requests=10)) + "\n")
        assert tail_stats(path, state)["requests"] == 10
        offset = state["offset"]
        with open(path, "a") as fh:
            fh.write(json.dumps(_stats(requests=30)) + "\n")
        assert tail_stats(path, state)["requests"] == 30
        assert state["offset"] > offset

    def test_partial_final_line_retried(self, tmp_path):
        path = tmp_path / "m.jsonl"
        state = {}
        with open(path, "w") as fh:
            fh.write(json.dumps(_stats(requests=10)) + "\n")
            fh.write('{"type": "serving_stats", "requests": 99')  # no \n
        assert tail_stats(path, state)["requests"] == 10
        with open(path, "a") as fh:
            fh.write(", \"responses\": 99}\n")
        assert tail_stats(path, state)["requests"] == 99

    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "m.jsonl"
        record = _stats()
        record["schema_version"] = METRICS_SCHEMA_VERSION + 1
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(SystemExit, match="newer"):
            tail_stats(path)


class TestRender:
    def test_waiting_frame(self):
        frame = render_dashboard(None, path="x.jsonl")
        assert "waiting" in frame

    def test_full_frame_with_slo(self):
        frame = render_dashboard(_stats(), path="m.jsonl")
        assert "42.50 req/s" in frame
        assert "rolling 60s window" in frame
        assert "p95" in frame and "30.00 ms" in frame
        assert "error budget used   60.0%" in frame
        assert "ALERTS ACTIVE: error_budget" in frame
        assert "admission wait" in frame
        assert "engine execute" in frame
        assert "env cache" in frame and "91.5% hit" in frame

    def test_frame_without_slo_uses_lifetime_histogram(self):
        frame = render_dashboard(_stats(with_slo=False), path="m.jsonl")
        assert "lifetime" in frame
        assert "ALERTS" not in frame

    def test_zero_requests_no_division_crash(self):
        frame = render_dashboard({"requests": 0, "responses": 0},
                                 path="m.jsonl")
        assert "requests" in frame


class TestMain:
    def test_single_frame_cli(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        path.write_text(json.dumps(_stats()) + "\n")
        assert main([str(path), "--frames", "1", "--no-clear"]) == 0
        out = capsys.readouterr().out
        assert "repro ops dashboard" in out
        assert "req/s" in out
