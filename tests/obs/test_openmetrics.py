"""OpenMetrics exporter: name sanitisation, families, exposition format."""

from repro.obs import MetricsRegistry
from repro.obs.openmetrics import (
    render_openmetrics,
    sanitize_metric_name,
    write_openmetrics,
)


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("serve.latency_ms", "repro_") == \
            "repro_serve_latency_ms"

    def test_leading_digit_guarded(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_colons_allowed(self):
        assert sanitize_metric_name("ns:metric") == "ns:metric"


class TestRender:
    def _registry(self):
        reg = MetricsRegistry()
        reg.inc("serve.requests", 5)
        reg.gauge("serve.queue_depth", 3)
        reg.add_time("solve.wall", 1.25)
        for v in (1.0, 2.0, 3.0, 4.0):
            reg.observe("serve.latency_ms", v)
        return reg

    def test_families_rendered(self):
        text = render_openmetrics(self._registry())
        assert "# TYPE repro_serve_requests counter" in text
        assert "repro_serve_requests_total 5" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 3" in text
        assert "# TYPE repro_solve_wall_seconds counter" in text
        assert "repro_solve_wall_seconds_total 1.25" in text
        assert "# TYPE repro_serve_latency_ms summary" in text
        assert 'repro_serve_latency_ms{quantile="0.5"}' in text
        assert "repro_serve_latency_ms_count 4" in text
        assert "repro_serve_latency_ms_sum 10" in text

    def test_ends_with_eof_terminator(self):
        text = render_openmetrics(self._registry())
        assert text.endswith("# EOF\n")

    def test_empty_registry_is_just_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"

    def test_empty_histogram_skips_quantiles(self):
        from repro.obs.metrics import Histogram
        reg = MetricsRegistry()
        reg.histograms["h"] = Histogram(8)
        text = render_openmetrics(reg)
        assert "quantile" not in text
        assert "repro_h_count 0" in text

    def test_write_openmetrics(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_openmetrics(self._registry(), path)
        assert path.read_text().endswith("# EOF\n")

    def test_sorted_stable_output(self):
        reg = self._registry()
        assert render_openmetrics(reg) == render_openmetrics(reg)
