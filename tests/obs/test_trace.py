"""Tests for spans, sinks, the tracing context and child-capture plumbing."""

import json

from repro import obs
from repro.core.perf import PerfCounters
from repro.obs import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    Tracer,
    absorb,
    capture_child,
    tracing,
)


class TestTracerSpans:
    def test_span_paths_nest(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("solve"):
            with tracer.span("select"):
                pass
        paths = [r["path"] for r in sink.records]
        # Inner span closes first.
        assert paths == ["solve/select", "solve"]

    def test_span_feeds_timing_aggregates(self):
        tracer = Tracer()
        with tracer.span("solve"):
            pass
        with tracer.span("solve"):
            pass
        assert tracer.metrics.timings["span.solve.count"] == 2
        assert tracer.metrics.timings["span.solve.time"] >= 0.0
        assert tracer.metrics.span_summary()[0][:2] == ("solve", 2)

    def test_span_attrs_in_record(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("solve", method="SMORE", workers=4):
            pass
        record = sink.records[0]
        assert record["type"] == "span"
        assert record["method"] == "SMORE"
        assert record["workers"] == 4
        assert record["dur"] >= 0.0

    def test_seq_strictly_increasing(self):
        sink = ListSink()
        tracer = Tracer(sink)
        tracer.event("a")
        with tracer.span("s"):
            tracer.event("b")
        tracer.emit_metrics()
        seqs = [r["seq"] for r in sink.records]
        assert seqs == list(range(len(seqs)))

    def test_counters_via_tracer(self):
        tracer = Tracer()
        tracer.count("n")
        tracer.count("n", 2)
        tracer.gauge("g", 5)
        tracer.record_perf(PerfCounters(planner_calls=7))
        assert tracer.metrics.counters == {"n": 3, "perf.planner_calls": 7}
        assert tracer.metrics.gauges == {"g": 5}


class TestJsonlSink:
    def test_writes_sorted_key_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"b": 1, "a": 2})
        sink.close()
        header_line, line = path.read_text().splitlines()
        assert line == '{"a": 2, "b": 1}'
        assert json.loads(line) == {"a": 2, "b": 1}
        header = json.loads(header_line)
        assert header["type"] == "trace_header"
        assert header["schema_version"] == obs.METRICS_SCHEMA_VERSION
        assert header["ts_monotonic"] >= 0.0

    def test_close_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()


class TestTracingContext:
    def test_installs_and_restores(self):
        before = obs.get_tracer()
        with tracing() as tracer:
            assert obs.get_tracer() is tracer
            assert tracer.enabled
        assert obs.get_tracer() is before

    def test_module_level_shims_route_to_active_tracer(self):
        with tracing() as tracer:
            obs.count("hits", 2)
            obs.gauge("size", 9)
            obs.add_time("wall", 0.5)
            with obs.span("outer"):
                obs.event("tick")
        assert tracer.metrics.counters == {"hits": 2}
        assert tracer.metrics.gauges == {"size": 9}
        assert tracer.metrics.timings["wall"] == 0.5
        assert "span.outer.time" in tracer.metrics.timings

    def test_trace_file_ends_with_metrics_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracing(path):
            obs.count("n", 3)
            obs.event("hello", answer=42)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["type"] for r in records] == \
            ["trace_header", "event", "metrics"]
        assert records[1]["answer"] == 42
        assert records[2]["counters"] == {"n": 3}

    def test_disabled_by_default(self):
        tracer = obs.get_tracer()
        assert not tracer.enabled
        # All instrumentation points are inert no-ops.
        obs.count("ignored")
        obs.gauge("ignored", 1)
        obs.add_time("ignored", 1.0)
        obs.event("ignored")
        with obs.span("ignored"):
            pass
        assert obs.current_metrics().to_dict() == \
            {"counters": {}, "gauges": {}, "timings": {}}

    def test_null_span_is_shared_singleton(self):
        # Zero-allocation disabled path: every no-op span is one object.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestChildCapture:
    def test_snapshot_none_when_disabled(self):
        with capture_child() as cap:
            obs.count("ignored")
        assert cap.snapshot is None
        absorb(cap.snapshot)  # no-op, must not raise

    def test_capture_diffs_and_buffers(self):
        with tracing() as tracer:
            obs.count("before", 1)
            with capture_child() as cap:
                obs.count("inside", 2)
                obs.event("child.tick")
            snap = cap.snapshot
        assert snap["metrics"]["counters"] == {"inside": 2}
        assert [r["name"] for r in snap["events"]] == ["child.tick"]
        # Captured counters stayed in the (forked) registry too; the
        # parent only absorbs the delta, never double-counting `before`.
        assert tracer.metrics.counters == {"before": 1, "inside": 2}

    def test_events_buffered_not_streamed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracing(path):
            with capture_child() as cap:
                obs.event("child.only")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        # The child event went to the buffer, not the file sink.
        assert [r["type"] for r in records] == ["trace_header", "metrics"]
        assert cap.snapshot["events"][0]["name"] == "child.only"

    def test_absorb_merges_and_reemits_with_fresh_seq(self):
        with tracing():  # stands in for the forked child process
            with capture_child() as cap:
                obs.count("n", 5)
                obs.event("tick")
        sink = ListSink()
        with tracing(sink=sink) as tracer:
            obs.event("parent.first")
            absorb(cap.snapshot)
            counters = dict(tracer.metrics.counters)
        assert counters == {"n": 5}
        events = [r for r in sink.records if r["type"] == "event"]
        # Parent seq numbering: its own event first, then the re-emitted
        # child event with a freshly assigned (larger) seq.
        assert [r["name"] for r in events] == ["parent.first", "tick"]
        assert events[1]["seq"] > events[0]["seq"]

    def test_absorb_in_item_order_is_deterministic(self):
        def child_snapshot(value):
            with tracing():
                with capture_child() as cap:
                    obs.count("n", value)
                    obs.event("done", value=value)
            return cap.snapshot

        snaps = [child_snapshot(v) for v in (1, 2, 3)]
        sink = ListSink()
        with tracing(sink=sink) as tracer:
            for snap in snaps:
                absorb(snap)
            counters = dict(tracer.metrics.counters)
        assert counters == {"n": 6}
        values = [r["value"] for r in sink.records if r["type"] == "event"]
        assert values == [1, 2, 3]
        seqs = [r["seq"] for r in sink.records]
        assert seqs == sorted(seqs)
