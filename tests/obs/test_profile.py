"""Op-level profiler: accounting, transparency, and fork-pool parity.

The PR's headline guarantees, asserted here rather than eyeballed:

* profiler-on runs are numerically bit-identical to profiler-off
  (forward values, gradients, Adam updates on a seeded TASNet step);
* ``no_grad`` decoding records zero backward samples;
* per-episode (``batch_rollouts=False``) op call counts and FLOP totals
  are identical serial vs. across the fork pool — the profiler deltas
  ship back with each item and merge in item order, like PR 3's
  telemetry.  (The *batched* decode path is exempt by design: pool
  chunking changes batch widths, so padded op shapes differ.)
"""

import numpy as np
import pytest

from repro import nn, obs
from repro.core import (
    CoverageModel,
    Grid,
    Location,
    Region,
    SensingTask,
    TravelTask,
    USMDWInstance,
    Worker,
)
from repro.nn import ops
from repro.obs.profile import (
    OpProfiler,
    profiling,
    render_profile,
    render_stacks,
    scope,
)
from repro.parallel import fork_available
from repro.smore import SMORESolver, TASNet, TASNetConfig, TASNetPolicy
from repro.smore.train import TASNetTrainer, TrainingConfig
from repro.tsptw import InsertionSolver


@pytest.fixture
def instance():
    region = Region(800, 800)
    grid = Grid(region, 4, 4)
    coverage = CoverageModel(grid, time_span=240.0, slot_minutes=60.0,
                             alpha=0.5)
    workers = (
        Worker(1, Location(50, 50), Location(750, 50), 0.0, 120.0,
               (TravelTask(10, Location(400, 50), 10.0),)),
        Worker(2, Location(50, 750), Location(750, 750), 0.0, 120.0,
               (TravelTask(20, Location(400, 750), 10.0),)),
    )
    tasks = tuple(
        SensingTask(100 + k, Location(100 + 120 * k, 100 + 100 * (k % 3)),
                    60.0 * (k % 4), 60.0 * (k % 4) + 60.0, 5.0)
        for k in range(6)
    )
    return USMDWInstance(workers=workers, sensing_tasks=tasks,
                         budget=100.0, mu=1.0, coverage=coverage,
                         name="profile-smoke")


def _make_policy(seed=0):
    config = TASNetConfig(d_model=8, num_heads=2, num_layers=1,
                          conv_channels=2)
    net = TASNet(config, 4, 4, rng=np.random.default_rng(seed))
    return TASNetPolicy(net)


def _make_solver():
    return SMORESolver(InsertionSolver(), _make_policy(), name="SMORE")


class TestOpProfilerCore:
    def test_forward_records_calls_time_flops(self):
        profiler = OpProfiler()
        a = nn.Tensor(np.ones((4, 8)), requires_grad=True)
        b = nn.Tensor(np.ones((8, 2)), requires_grad=True)
        with profiling(profiler=profiler):
            ops.matmul(a, b)
        stat = profiler.ops["matmul"]
        assert stat.fwd_calls == 1
        assert stat.fwd_seconds > 0
        assert stat.flops == 2 * 4 * 2 * 8
        assert stat.bwd_calls == 0

    def test_backward_samples_attributed_to_op_names(self):
        profiler = OpProfiler()
        a = nn.Tensor(np.ones((4, 8)), requires_grad=True)
        b = nn.Tensor(np.ones((8, 2)), requires_grad=True)
        with profiling(profiler=profiler):
            out = ops.sum(ops.tanh(ops.matmul(a, b)))
            out.backward()
        for name in ("matmul", "tanh", "sum"):
            assert profiler.ops[name].bwd_calls == 1
        assert profiler.ops["matmul"].bwd_flops \
            == 2 * profiler.ops["matmul"].flops
        assert "backward" in profiler.ops
        assert profiler.ops["backward"].kind == "scope"

    def test_composite_op_nests_constituents(self):
        profiler = OpProfiler()
        x = nn.Tensor(np.ones((3, 5)))
        mask = np.zeros((3, 5), dtype=bool)
        mask[:, 3:] = True
        with profiling(profiler=profiler):
            ops.masked_mean(x, mask, axis=-1)
        assert any(path.startswith("masked_mean;") for path in profiler.stacks)

    def test_scope_self_time_excludes_children(self):
        profiler = OpProfiler()
        with profiling(profiler=profiler):
            with scope("outer"):
                ops.matmul(nn.Tensor(np.ones((50, 50))),
                           nn.Tensor(np.ones((50, 50))))
        outer_self = profiler.self_seconds("outer")
        outer_total = profiler.ops["outer"].fwd_seconds
        child = profiler.ops["matmul"].fwd_seconds
        assert outer_total >= child
        assert outer_self <= outer_total - child + 1e-6

    def test_exception_in_op_still_closes_frame(self):
        profiler = OpProfiler()
        with profiling(profiler=profiler):
            with pytest.raises(ValueError):
                ops.matmul(nn.Tensor(np.ones((2, 3))),
                           nn.Tensor(np.ones((2, 3))))
            ops.add(nn.Tensor(np.ones(2)), nn.Tensor(np.ones(2)))
        assert profiler._frames == []
        assert profiler.ops["add"].fwd_calls == 1

    def test_live_bytes_watermark(self):
        profiler = OpProfiler()
        with profiling(profiler=profiler):
            tensors = [nn.Tensor(np.zeros(1000)) for _ in range(3)]
            assert profiler.live_bytes >= 3 * 8000
            del tensors
        import gc

        gc.collect()
        assert profiler.peak_live_bytes >= 3 * 8000
        assert profiler.live_bytes < 3 * 8000

    def test_collapsed_format(self):
        profiler = OpProfiler()
        with profiling(profiler=profiler):
            with scope("a"):
                ops.matmul(nn.Tensor(np.ones((40, 40))),
                           nn.Tensor(np.ones((40, 40))))
        lines = profiler.collapsed().splitlines()
        assert lines
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert int(value) > 0
        assert any(line.startswith("a;matmul ") for line in lines)

    def test_render_helpers_return_text(self):
        profiler = OpProfiler()
        with profiling(profiler=profiler):
            ops.add(nn.Tensor(np.ones(4)), nn.Tensor(np.ones(4)))
        assert "add" in render_profile(profiler)
        assert "add" in render_stacks(profiler)

    def test_profiling_restores_previous_hook(self):
        before = nn.get_tensor_hook()
        with profiling():
            assert nn.get_tensor_hook() is not before
        assert nn.get_tensor_hook() is before

    def test_scope_is_noop_without_hook(self):
        assert scope("x") is scope("y")

    def test_profile_written_to_jsonl(self, tmp_path):
        import json

        path = tmp_path / "profile.jsonl"
        with profiling(path):
            ops.add(nn.Tensor(np.ones(4)), nn.Tensor(np.ones(4)))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        types = {record["type"] for record in records}
        assert {"op", "stack", "memory", "summary"} <= types


class TestSnapshotMerge:
    def _sample_profiler(self):
        profiler = OpProfiler()
        with profiling(profiler=profiler):
            out = ops.sum(ops.matmul(
                nn.Tensor(np.ones((4, 8)), requires_grad=True),
                nn.Tensor(np.ones((8, 2)), requires_grad=True)))
            out.backward()
        return profiler

    def test_merge_of_diff_reproduces_totals(self):
        profiler = self._sample_profiler()
        empty_base = OpProfiler().snapshot()
        delta = profiler.diff(empty_base)
        fresh = OpProfiler()
        fresh.merge(delta)
        assert fresh.ops.keys() == profiler.ops.keys()
        for name in profiler.ops:
            assert fresh.ops[name]._row() == profiler.ops[name]._row()
        assert fresh.peak_live_bytes == profiler.peak_live_bytes

    def test_diff_is_delta_since_baseline(self):
        profiler = self._sample_profiler()
        baseline = profiler.snapshot()
        with profiling(profiler=profiler):
            ops.matmul(nn.Tensor(np.ones((4, 8))),
                       nn.Tensor(np.ones((8, 2))))
        delta = profiler.diff(baseline)
        assert delta["ops"]["matmul"][1] == 1  # one new forward call
        assert "sum" not in delta["ops"]       # unchanged op dropped

    def test_peak_bytes_max_merges(self):
        low, high = OpProfiler(), OpProfiler()
        low.peak_live_bytes = 100
        high.peak_live_bytes = 500
        low.merge(high.diff(OpProfiler().snapshot()))
        assert low.peak_live_bytes == 500

    def test_publish_into_metrics(self):
        profiler = self._sample_profiler()
        metrics = obs.MetricsRegistry()
        profiler.publish(metrics)
        rows = dict((name, (calls, seconds, flops))
                    for name, calls, seconds, flops
                    in metrics.profile_summary())
        assert rows["matmul"][0] == profiler.ops["matmul"].calls
        assert rows["matmul"][2] == profiler.ops["matmul"].total_flops
        assert metrics.gauges["profile.peak_live_bytes"] \
            == profiler.peak_live_bytes


class TestNumericTransparency:
    """Hook-on is bit-identical to hook-off (the acceptance criterion)."""

    def _train_step(self, instances, profiler=None):
        trainer = TASNetTrainer(
            _make_policy(seed=7), InsertionSolver(),
            TrainingConfig(iterations=1, batch_size=1, seed=3,
                           rollouts_per_instance=2))
        if profiler is None:
            trainer.train_iteration(instances)
        else:
            with profiling(profiler=profiler):
                trainer.train_iteration(instances)
        state = trainer.policy.net.state_dict()
        history = {name: list(values) for name, values
                   in trainer.history.items()
                   if not name.startswith("profile_")}
        return state, history

    def test_train_step_bit_identical_with_profiler(self, instance):
        baseline_state, baseline_history = self._train_step([instance])
        profiler = OpProfiler()
        profiled_state, profiled_history = self._train_step([instance],
                                                            profiler)
        assert baseline_history == profiled_history
        assert baseline_state.keys() == profiled_state.keys()
        for name in baseline_state:
            np.testing.assert_array_equal(baseline_state[name],
                                          profiled_state[name])
        # The profiled run actually recorded the update machinery.
        assert profiler.ops["matmul"].bwd_calls > 0
        assert "adam.step" in profiler.ops
        assert "clip_grad_norm" in profiler.ops

    def test_profiled_solve_matches_unprofiled(self, instance):
        baseline = _make_solver().solve(
            instance, greedy=False, rng=np.random.default_rng(5),
            num_samples=3)
        profiler = OpProfiler()
        with profiling(profiler=profiler):
            profiled = _make_solver().solve(
                instance, greedy=False, rng=np.random.default_rng(5),
                num_samples=3)
        assert profiled.objective == baseline.objective
        assert sorted(t.task_id for t in profiled.completed_tasks) \
            == sorted(t.task_id for t in baseline.completed_tasks)

    def test_no_grad_decode_records_zero_backward_samples(self, instance):
        profiler = OpProfiler()
        with profiling(profiler=profiler):
            _make_solver().solve(instance, greedy=True)
        assert profiler.ops  # ops were recorded...
        assert all(stat.bwd_calls == 0 for stat in profiler.ops.values())
        assert "backward" not in profiler.ops

    def test_history_profile_series_recorded(self, instance):
        trainer = TASNetTrainer(
            _make_policy(seed=7), InsertionSolver(),
            TrainingConfig(iterations=1, batch_size=1, seed=3))
        with profiling():
            trainer.train_iteration([instance])
        for series in ("profile_forward_seconds", "profile_backward_seconds",
                       "profile_flops", "profile_peak_live_bytes"):
            assert len(trainer.history.series(series)) == 1
        assert trainer.history.last("profile_flops") > 0
        assert trainer.history.last("profile_backward_seconds") > 0
        # Without a profiler the series stay absent (no zero-padding).
        trainer.train_iteration([instance])
        assert len(trainer.history.series("profile_flops")) == 1


class TestPoolParity:
    @pytest.mark.skipif(not fork_available(), reason="needs fork pools")
    def test_per_episode_profile_identical_serial_vs_pool(self, instance):
        def profiled_solve(workers):
            profiler = OpProfiler()
            with profiling(profiler=profiler):
                solution = _make_solver().solve(
                    instance, greedy=False, rng=np.random.default_rng(7),
                    num_samples=4, workers=workers, batch_rollouts=False)
            return solution, profiler

        serial_solution, serial = profiled_solve(1)
        pool_solution, pooled = profiled_solve(2)
        assert pool_solution.objective == serial_solution.objective
        assert pooled.ops.keys() == serial.ops.keys()
        for name in serial.ops:
            assert pooled.ops[name].fwd_calls == serial.ops[name].fwd_calls, \
                name
            assert pooled.ops[name].flops == serial.ops[name].flops, name
            assert pooled.ops[name].nbytes == serial.ops[name].nbytes, name
        assert pooled.peak_live_bytes > 0
