"""Rolling-window SLO tracking: windows, budgets, alerts, fork currency."""

import numpy as np
import pytest

from repro import obs
from repro.obs import ListSink
from repro.obs.slo import (
    FAILURE_KINDS,
    RollingCounter,
    RollingWindow,
    SloConfig,
    SloTracker,
    current_slo_tracker,
    install,
)


class TestRollingWindow:
    def test_observations_inside_window_are_kept(self):
        win = RollingWindow(window_s=10.0, num_buckets=5)
        for t, v in ((0.0, 1.0), (3.0, 2.0), (9.0, 3.0)):
            win.observe(v, now=t)
        assert win.values(now=9.0) == [1.0, 2.0, 3.0]
        assert win.count(now=9.0) == 3

    def test_old_buckets_fall_out(self):
        win = RollingWindow(window_s=10.0, num_buckets=5)
        win.observe(1.0, now=0.0)
        win.observe(2.0, now=9.0)
        # At t=15 the t=0 bucket is outside [5, 15]; the t=9 one is not.
        assert win.values(now=15.0) == [2.0]
        # Far future: everything pruned.
        assert win.values(now=100.0) == []

    def test_percentiles_interpolate(self):
        win = RollingWindow(window_s=100.0, num_buckets=10)
        for i in range(1, 101):
            win.observe(float(i), now=float(i % 50))
        assert win.percentile(0.0, now=49.0) == 1.0
        assert win.percentile(1.0, now=49.0) == 100.0
        assert win.percentile(0.5, now=49.0) == pytest.approx(50.5)

    def test_empty_window_percentile_is_none(self):
        win = RollingWindow()
        assert win.percentile(0.95, now=0.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingWindow(window_s=0.0)
        with pytest.raises(ValueError):
            RollingWindow(num_buckets=0)
        with pytest.raises(ValueError):
            RollingWindow().percentile(1.5, now=0.0)

    def test_delta_since_is_append_only_tail(self):
        win = RollingWindow(window_s=10.0, num_buckets=5)
        win.observe(1.0, now=0.0)
        base = win.state()
        win.observe(2.0, now=0.5)     # same bucket, appended
        win.observe(3.0, now=4.0)     # new bucket
        delta = win.delta_since(base)
        assert delta == {0: [2.0], 2: [3.0]}
        other = RollingWindow(window_s=10.0, num_buckets=5)
        other.observe(1.0, now=0.0)
        other.merge_state(delta)
        assert other.values(now=4.0) == win.values(now=4.0)


class TestRollingCounter:
    def test_totals_and_pruning(self):
        ctr = RollingCounter(window_s=10.0, num_buckets=5)
        ctr.inc("ok", now=0.0)
        ctr.inc("ok", now=9.0)
        ctr.inc("rejected", now=9.0)
        assert ctr.totals(now=9.0) == {"ok": 2, "rejected": 1}
        assert ctr.totals(now=15.0) == {"ok": 1, "rejected": 1}

    def test_delta_merge_roundtrip(self):
        ctr = RollingCounter(window_s=10.0, num_buckets=5)
        ctr.inc("ok", now=1.0)
        base = ctr.state()
        ctr.inc("ok", now=1.0)
        ctr.inc("error", now=3.0)
        delta = ctr.delta_since(base)
        fresh = RollingCounter(window_s=10.0, num_buckets=5)
        fresh.merge_state(delta)
        assert fresh.totals(now=3.0) == {"ok": 1, "error": 1}


class TestSloTracker:
    def test_unknown_outcome_rejected(self):
        tracker = SloTracker()
        with pytest.raises(ValueError, match="unknown outcome"):
            tracker.record("exploded", now=0.0)

    def test_report_counts_and_percentiles(self):
        tracker = SloTracker(SloConfig(window_s=60.0))
        for i in range(20):
            tracker.record("ok", latency_ms=float(i + 1), now=1.0,
                           check=False)
        tracker.record("shed_deadline", now=1.0, check=False)
        report = tracker.report(now=1.0)
        assert report["requests"] == 21
        assert report["ok"] == 20
        assert report["failures"] == {"shed_deadline": 1}
        assert report["error_rate"] == pytest.approx(1 / 21)
        assert report["latency_ms"]["count"] == 20
        assert report["latency_ms"]["p50"] == pytest.approx(10.5)
        assert report["totals"] == {"ok": 20, "shed_deadline": 1}

    def test_error_budget_alert_fires_and_clears(self):
        config = SloConfig(window_s=10.0, num_buckets=5, error_budget=0.1,
                           min_requests=5, check_interval_s=0.0)
        tracker = SloTracker(config)
        sink = ListSink()
        with obs.tracing(sink=sink):
            for _ in range(8):
                tracker.record("ok", latency_ms=1.0, now=1.0, check=False)
            for _ in range(4):
                tracker.record("error", now=1.0, check=False)
            tracker.check(now=1.0)
            assert "error_budget" in tracker.active_alerts
            assert tracker.alerts_fired == 1
            # Window rolls past the failures: objective recovers.
            for _ in range(10):
                tracker.record("ok", latency_ms=1.0, now=30.0, check=False)
            tracker.check(now=30.0)
            assert tracker.active_alerts == {}
        names = [r["name"] for r in sink.records if r["type"] == "event"]
        assert names.count("slo.alert") == 1
        assert names.count("slo.clear") == 1
        alert = next(r for r in sink.records if r.get("name") == "slo.alert")
        assert alert["objective"] == "error_budget"
        assert alert["value"] > alert["target"]

    def test_latency_objective_alert(self):
        config = SloConfig(window_s=10.0, num_buckets=5, error_budget=1.0,
                           latency_p95_ms=50.0, min_requests=1,
                           check_interval_s=0.0)
        tracker = SloTracker(config)
        for _ in range(20):
            tracker.record("ok", latency_ms=100.0, now=1.0, check=False)
        verdicts = tracker.check(now=1.0)
        assert not verdicts["latency_p95_ms"]["ok"]
        assert "latency_p95_ms" in tracker.active_alerts

    def test_min_requests_suppresses_noise(self):
        config = SloConfig(error_budget=0.01, min_requests=10,
                           check_interval_s=0.0)
        tracker = SloTracker(config)
        tracker.record("error", now=0.0, check=False)
        verdicts = tracker.check(now=0.0)
        assert verdicts["error_budget"]["ok"]  # 1 request < min_requests

    def test_check_interval_throttles(self):
        config = SloConfig(error_budget=0.5, min_requests=1,
                           check_interval_s=100.0)
        tracker = SloTracker(config)
        # Every record goes through maybe_check; only the first (at -inf
        # distance) actually evaluates.
        tracker.record("error", now=0.0)
        tracker.record("error", now=1.0)
        tracker.record("error", now=2.0)
        assert tracker._last_check == 0.0

    def test_snapshot_diff_merge_roundtrip(self):
        a = SloTracker(SloConfig(window_s=60.0))
        a.record("ok", latency_ms=5.0, now=1.0, check=False)
        base = a.snapshot()
        a.record("ok", latency_ms=7.0, now=2.0, check=False)
        a.record("rejected", now=3.0, check=False)
        delta = a.diff(base)
        b = SloTracker(SloConfig(window_s=60.0))
        b.record("ok", latency_ms=5.0, now=1.0, check=False)
        b.merge(delta)
        assert b.report(now=3.0) == a.report(now=3.0)

    def test_install_and_capture_child_propagation(self):
        tracker = SloTracker(SloConfig(window_s=60.0))
        assert current_slo_tracker() is None
        with install(tracker):
            assert current_slo_tracker() is tracker
            with obs.capture_child() as cap:
                tracker.record("ok", latency_ms=3.0, now=1.0, check=False)
                tracker.record("rejected", now=1.0, check=False)
            # The delta rode the snapshot even with tracing off.
            snap = cap.snapshot
            assert snap["slo"]["totals"] == {"ok": 1, "rejected": 1}
            # A fresh parent-side tracker absorbs the child delta.
            parent = SloTracker(SloConfig(window_s=60.0))
            with install(parent):
                obs.absorb(snap)
            assert parent.totals == {"ok": 1, "rejected": 1}
            assert parent.latency.count(now=1.0) == 1
        assert current_slo_tracker() is None


class TestDynamicLoopIntegration:
    def test_run_dynamic_episode_feeds_tracker(self):
        from repro.datasets import (
            InstanceOptions,
            generate_instances,
            poisson_arrivals,
        )
        from repro.smore import GreedySelectionRule, SMORESolver
        from repro.tsptw import InsertionSolver

        instance = generate_instances(
            "delivery", 1, seed=3,
            options=InstanceOptions(task_density=0.03, budget=120.0))[0]
        schedule = poisson_arrivals(instance, np.random.default_rng(3),
                                    initial_fraction=0.4, ttl=30.0)
        solver = SMORESolver(InsertionSolver(), GreedySelectionRule())
        tracker = SloTracker(SloConfig(window_s=1e9, check_interval_s=0.0,
                                       min_requests=10**6))
        with install(tracker):
            result = solver.solve_dynamic(instance, schedule)
        # Every scheduled task is accounted once: selections recorded ok,
        # expiries/dead-on-arrival recorded rejected — on simulation time.
        assert tracker.totals.get("ok", 0) == len(result.selected_ids)
        assert tracker.totals.get("rejected", 0) == len(result.rejected_ids)
        assert tracker.totals.get("ok", 0) + \
            tracker.totals.get("rejected", 0) > 0
        # Repair latencies landed in the window (ms, non-negative).
        values = tracker.latency.values(now=instance.coverage.time_span)
        assert all(v >= 0.0 for v in values)

    def test_failure_kinds_cover_serving_and_dynamic(self):
        assert set(FAILURE_KINDS) == \
            {"shed_deadline", "overload", "error", "rejected"}

    def test_parallel_rollouts_merge_same_totals(self):
        from repro.datasets import (
            InstanceOptions,
            generate_instances,
            poisson_arrivals,
        )
        from repro.smore import GreedySelectionRule, SMORESolver
        from repro.tsptw import InsertionSolver

        instance = generate_instances(
            "delivery", 1, seed=5,
            options=InstanceOptions(task_density=0.02, budget=100.0))[0]
        schedule = poisson_arrivals(instance, np.random.default_rng(5),
                                    initial_fraction=0.5, ttl=40.0)

        def run(workers):
            solver = SMORESolver(InsertionSolver(), GreedySelectionRule())
            tracker = SloTracker(SloConfig(window_s=1e9,
                                           min_requests=10**6))
            with install(tracker):
                solver.solve_dynamic(instance, schedule, greedy=False,
                                     rng=np.random.default_rng(11),
                                     num_samples=3, workers=workers)
            return dict(tracker.totals)

        assert run(1) == run(2)
