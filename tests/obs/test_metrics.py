"""Tests for the metrics registry and training history (``repro.obs``)."""

import pickle

import pytest

from repro.core.perf import PerfCounters
from repro.obs import (
    PERF_COUNTER_NAMES,
    PERF_GAUGE_NAMES,
    PERF_TIMING_NAMES,
    MetricsRegistry,
    TrainingHistory,
)


class TestBasicOps:
    def test_inc_accumulates(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        assert m.counters == {"a": 5}

    def test_gauge_keeps_maximum(self):
        m = MetricsRegistry()
        m.gauge("size", 3)
        m.gauge("size", 7)
        m.gauge("size", 5)
        assert m.gauges == {"size": 7}

    def test_add_time_sums(self):
        m = MetricsRegistry()
        m.add_time("t", 0.25)
        m.add_time("t", 0.5)
        assert m.timings["t"] == pytest.approx(0.75)

    def test_clear(self):
        m = MetricsRegistry()
        m.inc("a")
        m.gauge("g", 1)
        m.add_time("t", 1.0)
        m.clear()
        assert m.to_dict() == {"counters": {}, "gauges": {}, "timings": {}}


class TestSnapshotMerge:
    def test_snapshot_is_picklable_copy(self):
        m = MetricsRegistry()
        m.inc("a", 2)
        snap = m.snapshot()
        m.inc("a", 3)  # later mutation must not leak into the snapshot
        assert snap["counters"] == {"a": 2}
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_merge_snapshot_round_trip(self):
        m = MetricsRegistry()
        m.inc("a", 2)
        m.gauge("g", 4)
        m.add_time("t", 0.5)
        other = MetricsRegistry()
        other.merge_snapshot(m.snapshot())
        assert other.to_dict() == m.to_dict()

    def test_merge_sums_counters_and_maxes_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 2)
        a.gauge("g", 10)
        b.inc("n", 3)
        b.gauge("g", 4)
        b.add_time("t", 1.0)
        a.merge(b)
        assert a.counters == {"n": 5}
        assert a.gauges == {"g": 10}
        assert a.timings == {"t": 1.0}

    def test_merge_is_order_insensitive_for_counters(self):
        parts = []
        for value in (1, 5, 2):
            m = MetricsRegistry()
            m.inc("n", value)
            m.gauge("g", value)
            parts.append(m.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in parts:
            forward.merge_snapshot(snap)
        for snap in reversed(parts):
            backward.merge_snapshot(snap)
        assert forward.to_dict() == backward.to_dict()


class TestDiff:
    def test_diff_drops_zero_deltas(self):
        m = MetricsRegistry()
        m.inc("unchanged", 5)
        baseline = m.snapshot()
        m.inc("changed", 3)
        delta = m.diff(baseline)
        assert delta["counters"] == {"changed": 3}

    def test_baseline_plus_delta_reproduces(self):
        m = MetricsRegistry()
        m.inc("a", 2)
        m.gauge("g", 3)
        m.add_time("t", 0.5)
        baseline = m.snapshot()
        m.inc("a", 4)
        m.gauge("g", 9)
        m.add_time("t", 0.25)
        delta = m.diff(baseline)

        rebuilt = MetricsRegistry()
        rebuilt.merge_snapshot(baseline)
        rebuilt.merge_snapshot(delta)
        assert rebuilt.to_dict() == m.to_dict()


class TestPerfRoundTrip:
    def _perf(self):
        return PerfCounters(planner_calls=10, init_planner_calls=4,
                            backend_calls=3, cache_hits=6, cache_misses=4,
                            cache_size=5, cache_evictions=1, init_time=0.5,
                            selection_time=1.5, rollouts=2)

    def test_record_then_project_back(self):
        perf = self._perf()
        m = MetricsRegistry()
        m.record_perf(perf)
        assert m.to_perf() == perf

    def test_all_fields_covered(self):
        # Every PerfCounters field must belong to exactly one category, or
        # the round trip above silently drops new fields.
        from dataclasses import fields

        categorised = set(PERF_COUNTER_NAMES + PERF_TIMING_NAMES
                          + PERF_GAUGE_NAMES)
        assert {f.name for f in fields(PerfCounters)} == categorised

    def test_prefix_namespacing(self):
        m = MetricsRegistry()
        m.record_perf(self._perf(), prefix="solve.")
        assert "solve.planner_calls" in m.counters
        assert m.to_perf(prefix="solve.") == self._perf()
        assert m.to_perf(prefix="other.") == PerfCounters()


class TestSpanSummary:
    def test_rows_from_span_timings(self):
        m = MetricsRegistry()
        m.add_time("span.solve.time", 1.0)
        m.add_time("span.solve.count", 2)
        m.add_time("span.solve/init.time", 0.25)
        m.add_time("span.solve/init.count", 1)
        m.add_time("not_a_span", 9.0)
        assert m.span_summary() == [("solve", 2, 1.0),
                                    ("solve/init", 1, 0.25)]

    def test_empty_registry(self):
        assert MetricsRegistry().span_summary() == []


class TestTrainingHistory:
    def test_record_appends_series(self):
        h = TrainingHistory(reward=[])
        h.record(reward=1.0, loss=0.5)
        h.record(reward=2.0, loss=0.25)
        assert h["reward"] == [1.0, 2.0]
        assert h.series("loss") == [0.5, 0.25]

    def test_dict_indexing_preserved(self):
        # Existing call sites index the history like a plain dict.
        h = TrainingHistory(reward=[], val=[])
        h["reward"].append(3.0)
        assert h["reward"] == [3.0]
        assert isinstance(h, dict)

    def test_last(self):
        h = TrainingHistory()
        assert h.last("reward") is None
        assert h.last("reward", 0.0) == 0.0
        h.record(reward=4.0)
        assert h.last("reward") == 4.0

    def test_summary_mentions_each_series(self):
        h = TrainingHistory()
        h.record(reward=1.0)
        h.record(reward=2.0)
        text = h.summary()
        assert "reward" in text
        assert "n=2" in text
