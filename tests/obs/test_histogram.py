"""Bounded-reservoir histograms: quantiles, delta/merge algebra.

The serving layer's latency and batch-size distributions ride on
``MetricsRegistry.observe``; these tests pin the metric itself — exact
quantiles inside the reservoir, counter-like ``snapshot``/``diff``/
``merge_snapshot`` algebra, and propagation through ``capture_child`` /
``absorb`` like every other registry family.
"""

import pytest

from repro import obs
from repro.obs.metrics import Histogram, MetricsRegistry


class TestHistogram:
    def test_exact_stats_inside_reservoir(self):
        hist = Histogram()
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            hist.observe(v)
        assert hist.count == 5
        assert hist.total == 15.0
        assert hist.min == 1.0 and hist.max == 5.0
        assert hist.mean == 3.0
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(0.5) == 3.0
        assert hist.quantile(1.0) == 5.0

    def test_quantile_interpolates(self):
        hist = Histogram()
        hist.observe(0.0)
        hist.observe(10.0)
        assert hist.quantile(0.25) == pytest.approx(2.5)

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError, match="empty histogram"):
            Histogram().quantile(0.5)

    def test_out_of_range_quantile_raises(self):
        hist = Histogram()
        hist.observe(1.0)
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(1.5)

    def test_bad_capacity_raises(self):
        with pytest.raises(ValueError, match="capacity"):
            Histogram(0)

    def test_reservoir_bounds_memory_but_keeps_exact_extremes(self):
        hist = Histogram(capacity=10)
        for v in range(100):
            hist.observe(float(v))
        assert len(hist.values) == 10
        assert hist.count == 100
        assert hist.total == sum(range(100))
        # min/max/count/total stay exact beyond the reservoir.
        assert hist.min == 0.0 and hist.max == 99.0
        # Quantiles degrade to first-capacity-sample estimates.
        assert hist.quantile(0.5) <= 9.0

    def test_summary_shape(self):
        hist = Histogram()
        for v in range(1, 101):
            hist.observe(float(v))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)
        assert Histogram().summary() == {"count": 0}


class TestRegistryHistograms:
    def test_observe_and_summary(self):
        reg = MetricsRegistry()
        for v in [2.0, 4.0, 6.0]:
            reg.observe("latency", v)
        assert reg.quantile("latency", 0.5) == 4.0
        assert reg.histogram_summary("latency")["count"] == 3
        assert reg.histogram_summary("never-observed") == {"count": 0}

    def test_snapshot_roundtrip(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        reg.observe("h", 9.0)
        other = MetricsRegistry()
        other.merge_snapshot(reg.snapshot())
        assert other.histogram_summary("h") == reg.histogram_summary("h")

    def test_diff_ships_only_new_observations(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        baseline = reg.snapshot()
        reg.observe("h", 2.0)
        reg.observe("h", 3.0)
        delta = reg.diff(baseline)
        assert delta["histograms"]["h"]["count"] == 2
        assert delta["histograms"]["h"]["values"] == [2.0, 3.0]
        # Baseline + delta reproduces the current registry (the counter
        # contract, extended to histograms).
        rebuilt = MetricsRegistry()
        rebuilt.merge_snapshot(baseline)
        rebuilt.merge_snapshot(delta)
        assert rebuilt.histogram_summary("h") == reg.histogram_summary("h")

    def test_diff_without_new_observations_is_empty(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        delta = reg.diff(reg.snapshot())
        assert "histograms" not in delta

    def test_merge_in_item_order_is_deterministic(self):
        parts = []
        for values in ([1.0, 2.0], [3.0], [4.0, 5.0]):
            reg = MetricsRegistry()
            for v in values:
                reg.observe("h", v)
            parts.append(reg.snapshot())
        merged = MetricsRegistry()
        for part in parts:
            merged.merge_snapshot(part)
        hist = merged.histograms["h"]
        assert hist.count == 5
        assert hist.values == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_clear_drops_histograms(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        reg.clear()
        assert reg.histograms == {}


class TestTracerPlumbing:
    def test_observe_records_into_current_tracer(self):
        with obs.tracing() as tracer:
            obs.observe("serve.latency_ms", 12.0)
            obs.observe("serve.latency_ms", 18.0)
            assert tracer.metrics.quantile("serve.latency_ms", 0.5) == 15.0

    def test_observe_is_noop_when_disabled(self):
        obs.observe("nobody-home", 1.0)  # must not raise
        assert "nobody-home" not in obs.current_metrics().histograms

    def test_capture_child_absorb_roundtrip(self):
        """A fork-pool child's histogram delta rides the same snapshot
        channel as counters and merges in item order."""
        with obs.tracing() as tracer:
            obs.observe("h", 1.0)
            with obs.capture_child() as cap:
                obs.observe("h", 2.0)
                obs.observe("h", 3.0)
            # Simulate the fork: the parent-side registry never saw the
            # child's observations (in a real fork they die with the
            # child); drop them before absorbing the shipped delta.
            hist = tracer.metrics.histograms["h"]
            hist.count -= 2
            hist.total -= 5.0
            del hist.values[1:]
            hist.max = 1.0
            obs.absorb(cap.snapshot)
            assert tracer.metrics.histograms["h"].count == 3
            assert tracer.metrics.histograms["h"].values == [1.0, 2.0, 3.0]
