"""Bounded-reservoir histograms: quantiles, delta/merge algebra.

The serving layer's latency and batch-size distributions ride on
``MetricsRegistry.observe``; these tests pin the metric itself — exact
quantiles inside the reservoir, counter-like ``snapshot``/``diff``/
``merge_snapshot`` algebra, and propagation through ``capture_child`` /
``absorb`` like every other registry family.
"""

import pytest

from repro import obs
from repro.obs.metrics import Histogram, MetricsRegistry


class TestHistogram:
    def test_exact_stats_inside_reservoir(self):
        hist = Histogram()
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            hist.observe(v)
        assert hist.count == 5
        assert hist.total == 15.0
        assert hist.min == 1.0 and hist.max == 5.0
        assert hist.mean == 3.0
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(0.5) == 3.0
        assert hist.quantile(1.0) == 5.0

    def test_quantile_interpolates(self):
        hist = Histogram()
        hist.observe(0.0)
        hist.observe(10.0)
        assert hist.quantile(0.25) == pytest.approx(2.5)

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError, match="empty histogram"):
            Histogram().quantile(0.5)

    def test_out_of_range_quantile_raises(self):
        hist = Histogram()
        hist.observe(1.0)
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(1.5)

    def test_bad_capacity_raises(self):
        with pytest.raises(ValueError, match="capacity"):
            Histogram(0)

    def test_reservoir_bounds_memory_but_keeps_exact_extremes(self):
        hist = Histogram(capacity=10)
        for v in range(100):
            hist.observe(float(v))
        assert len(hist.values) == 10
        assert hist.count == 100
        assert hist.total == sum(range(100))
        # min/max/count/total stay exact beyond the reservoir.
        assert hist.min == 0.0 and hist.max == 99.0
        # Quantiles degrade to first-capacity-sample estimates.
        assert hist.quantile(0.5) <= 9.0

    def test_summary_shape(self):
        hist = Histogram()
        for v in range(1, 101):
            hist.observe(float(v))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)
        assert Histogram().summary() == {"count": 0}


class TestRegistryHistograms:
    def test_observe_and_summary(self):
        reg = MetricsRegistry()
        for v in [2.0, 4.0, 6.0]:
            reg.observe("latency", v)
        assert reg.quantile("latency", 0.5) == 4.0
        assert reg.histogram_summary("latency")["count"] == 3
        assert reg.histogram_summary("never-observed") == {"count": 0}

    def test_snapshot_roundtrip(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        reg.observe("h", 9.0)
        other = MetricsRegistry()
        other.merge_snapshot(reg.snapshot())
        assert other.histogram_summary("h") == reg.histogram_summary("h")

    def test_diff_ships_only_new_observations(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        baseline = reg.snapshot()
        reg.observe("h", 2.0)
        reg.observe("h", 3.0)
        delta = reg.diff(baseline)
        assert delta["histograms"]["h"]["count"] == 2
        assert delta["histograms"]["h"]["values"] == [2.0, 3.0]
        # Baseline + delta reproduces the current registry (the counter
        # contract, extended to histograms).
        rebuilt = MetricsRegistry()
        rebuilt.merge_snapshot(baseline)
        rebuilt.merge_snapshot(delta)
        assert rebuilt.histogram_summary("h") == reg.histogram_summary("h")

    def test_diff_without_new_observations_is_empty(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        delta = reg.diff(reg.snapshot())
        assert "histograms" not in delta

    def test_merge_in_item_order_is_deterministic(self):
        parts = []
        for values in ([1.0, 2.0], [3.0], [4.0, 5.0]):
            reg = MetricsRegistry()
            for v in values:
                reg.observe("h", v)
            parts.append(reg.snapshot())
        merged = MetricsRegistry()
        for part in parts:
            merged.merge_snapshot(part)
        hist = merged.histograms["h"]
        assert hist.count == 5
        assert hist.values == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_clear_drops_histograms(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        reg.clear()
        assert reg.histograms == {}


class TestTracerPlumbing:
    def test_observe_records_into_current_tracer(self):
        with obs.tracing() as tracer:
            obs.observe("serve.latency_ms", 12.0)
            obs.observe("serve.latency_ms", 18.0)
            assert tracer.metrics.quantile("serve.latency_ms", 0.5) == 15.0

    def test_observe_is_noop_when_disabled(self):
        obs.observe("nobody-home", 1.0)  # must not raise
        assert "nobody-home" not in obs.current_metrics().histograms

    def test_capture_child_absorb_roundtrip(self):
        """A fork-pool child's histogram delta rides the same snapshot
        channel as counters and merges in item order."""
        with obs.tracing() as tracer:
            obs.observe("h", 1.0)
            with obs.capture_child() as cap:
                obs.observe("h", 2.0)
                obs.observe("h", 3.0)
            # Simulate the fork: the parent-side registry never saw the
            # child's observations (in a real fork they die with the
            # child); drop them before absorbing the shipped delta.
            hist = tracer.metrics.histograms["h"]
            hist.count -= 2
            hist.total -= 5.0
            del hist.values[1:]
            hist.max = 1.0
            obs.absorb(cap.snapshot)
            assert tracer.metrics.histograms["h"].count == 3
            assert tracer.metrics.histograms["h"].values == [1.0, 2.0, 3.0]


class TestWeightedMergeSketch:
    """Property tests for the overflow regime: compacted weighted merges
    keep quantiles bounded-error in ANY merge order.

    The contract (class docstring of :class:`Histogram`): each
    compaction adds at most ``1/capacity`` of the represented mass in
    rank error.  On uniform data rank error equals value error, so the
    assertions below are direct reads of the guarantee.
    """

    CAPACITY = 128
    SHARDS = 24
    PER_SHARD = 40  # 24 * 40 = 960 values >> capacity

    @staticmethod
    def _make_shards(rng, shards, per_shard):
        """Uniform[0,1) observations pre-split into shard reservoirs."""
        data = rng.random(shards * per_shard)
        out = []
        for i in range(shards):
            hist = Histogram(TestWeightedMergeSketch.CAPACITY)
            for v in data[i * per_shard:(i + 1) * per_shard]:
                hist.observe(float(v))
            out.append(hist)
        return data, out

    def test_quantiles_bounded_over_100_random_merge_orders(self):
        import numpy as np

        rng = np.random.default_rng(2024)
        data, _ = self._make_shards(rng, self.SHARDS, self.PER_SHARD)
        order_rng = np.random.default_rng(7)
        for _ in range(100):
            order = order_rng.permutation(self.SHARDS)
            _, shards = self._make_shards(np.random.default_rng(2024),
                                          self.SHARDS, self.PER_SHARD)
            merged = Histogram(self.CAPACITY)
            for idx in order:
                merged.merge_state(shards[idx].state())
            assert merged.count == len(data)
            assert merged.total == pytest.approx(float(data.sum()))
            assert merged.min == float(data.min())
            assert merged.max == float(data.max())
            # Rank-error budget: one unit per compaction plus one for
            # the final interpolation, each worth 1/capacity of mass.
            budget = (merged.compactions + 1) / self.CAPACITY
            for q in (0.05, 0.25, 0.5, 0.75, 0.95, 0.99):
                exact = float(np.quantile(data, q))
                assert abs(merged.quantile(q) - exact) <= budget, (
                    f"q={q}: |{merged.quantile(q):.4f} - {exact:.4f}| "
                    f"> {budget:.4f} after {merged.compactions} compactions")

    def test_pairwise_tree_merge_matches_sequential_within_budget(self):
        import numpy as np

        rng = np.random.default_rng(11)
        data, shards = self._make_shards(rng, self.SHARDS, self.PER_SHARD)
        seq = Histogram(self.CAPACITY)
        for shard in shards:
            seq.merge_state(shard.state())
        _, shards2 = self._make_shards(np.random.default_rng(11),
                                       self.SHARDS, self.PER_SHARD)
        while len(shards2) > 1:  # binary reduction tree
            nxt = []
            for i in range(0, len(shards2) - 1, 2):
                shards2[i].merge_state(shards2[i + 1].state())
                nxt.append(shards2[i])
            if len(shards2) % 2:
                nxt.append(shards2[-1])
            shards2 = nxt
        tree = shards2[0]
        assert tree.count == seq.count == len(data)
        budget = (seq.compactions + tree.compactions + 2) / self.CAPACITY
        for q in (0.5, 0.95, 0.99):
            assert abs(tree.quantile(q) - seq.quantile(q)) <= budget

    def test_exact_regime_untouched_by_sketch_machinery(self):
        """Under capacity the merge stays bit-exact append-only: no
        weights, no compactions, values in item order."""
        a, b = Histogram(64), Histogram(64)
        for v in (3.0, 1.0):
            a.observe(v)
        for v in (2.0, 4.0):
            b.observe(v)
        a.merge_state(b.state())
        assert a.values == [3.0, 1.0, 2.0, 4.0]
        assert a.weights is None
        assert a.compactions == 0
