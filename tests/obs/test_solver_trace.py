"""End-to-end tracing acceptance: parallel solve == serial solve, traced.

The PR's headline guarantee: a traced ``SMORESolver.solve(workers=4)``
produces merged counters *bit-identical* to the serial run's, and a valid
JSONL trace file.  When the ``REPRO_TRACE_DIR`` environment variable is
set (as in CI), the trace from this test is written there so the workflow
can upload it as an artifact.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core import (
    CoverageModel,
    Grid,
    Location,
    Region,
    SensingTask,
    TravelTask,
    USMDWInstance,
    Worker,
)
from repro.parallel import fork_available
from repro.smore import SMORESolver, TASNet, TASNetConfig, TASNetPolicy
from repro.tsptw import InsertionSolver


@pytest.fixture
def instance():
    region = Region(800, 800)
    grid = Grid(region, 4, 4)
    coverage = CoverageModel(grid, time_span=240.0, slot_minutes=60.0,
                             alpha=0.5)
    workers = (
        Worker(1, Location(50, 50), Location(750, 50), 0.0, 120.0,
               (TravelTask(10, Location(400, 50), 10.0),)),
        Worker(2, Location(50, 750), Location(750, 750), 0.0, 120.0,
               (TravelTask(20, Location(400, 750), 10.0),)),
    )
    tasks = tuple(
        SensingTask(100 + k, Location(100 + 120 * k, 100 + 100 * (k % 3)),
                    60.0 * (k % 4), 60.0 * (k % 4) + 60.0, 5.0)
        for k in range(6)
    )
    return USMDWInstance(workers=workers, sensing_tasks=tasks,
                         budget=100.0, mu=1.0, coverage=coverage,
                         name="trace-smoke")


def _make_solver():
    config = TASNetConfig(d_model=8, num_heads=2, num_layers=1,
                          conv_channels=2)
    net = TASNet(config, 4, 4, rng=np.random.default_rng(0))
    return SMORESolver(InsertionSolver(), TASNetPolicy(net), name="SMORE")


def _traced_solve(instance, workers, trace_path):
    with obs.tracing(trace_path) as tracer:
        solution = _make_solver().solve(
            instance, greedy=False, rng=np.random.default_rng(7),
            num_samples=4, workers=workers)
        counters = dict(tracer.metrics.counters)
        gauges = dict(tracer.metrics.gauges)
    return solution, counters, gauges


def _trace_dir(tmp_path) -> Path:
    override = os.environ.get("REPRO_TRACE_DIR")
    if override:
        path = Path(override)
        path.mkdir(parents=True, exist_ok=True)
        return path
    return tmp_path


@pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
class TestTracedParallelSolve:
    def test_parallel_counters_bit_identical_to_serial(self, instance,
                                                       tmp_path):
        trace_dir = _trace_dir(tmp_path)
        serial, serial_counters, serial_gauges = _traced_solve(
            instance, workers=1, trace_path=trace_dir / "solve_serial.jsonl")
        fanned, fanned_counters, fanned_gauges = _traced_solve(
            instance, workers=4, trace_path=trace_dir / "solve_parallel.jsonl")

        assert fanned_counters == serial_counters
        assert fanned_gauges == serial_gauges
        assert fanned.objective == serial.objective
        # The counters actually observed something.
        assert serial_counters["solve.count"] == 1
        assert serial_counters["solve.rollouts"] == 4
        assert serial_counters["solve.planner_calls"] > 0

    def test_trace_file_is_valid_jsonl(self, instance, tmp_path):
        path = tmp_path / "solve.jsonl"
        _traced_solve(instance, workers=4, trace_path=path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records, "trace file is empty"
        # The sink stamps a schema header as the first line.
        assert records[0]["type"] == "trace_header"
        assert records[0]["schema_version"] == obs.METRICS_SCHEMA_VERSION
        records = records[1:]
        types = {r["type"] for r in records}
        assert types <= {"span", "event", "metrics"}
        assert records[-1]["type"] == "metrics"
        # Deterministic ordering: parent-assigned seq is 0..n-1 in file order.
        assert [r["seq"] for r in records] == list(range(len(records)))
        # The solver's spans and completion event made it into the file.
        names = [r.get("name") for r in records]
        assert "solve" in names
        assert "solve.done" in names


class TestUntracedSolveUnaffected:
    def test_solve_runs_with_tracing_disabled(self, instance):
        solution = _make_solver().solve(instance, num_samples=2)
        assert solution.objective >= 0.0
        # The module-level registry stayed empty.
        assert obs.current_metrics().to_dict() == \
            {"counters": {}, "gauges": {}, "timings": {}}
