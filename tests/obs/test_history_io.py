"""JSONL round-trip for TrainingHistory save/load."""

import json

from repro.obs import TrainingHistory


class TestHistoryRoundTrip:
    def test_save_load_round_trips(self, tmp_path):
        history = TrainingHistory()
        history.record(reward=1.0, loss=-0.5)
        history.record(reward=2.0, loss=-0.25)
        history.record(eval=0.9)
        path = tmp_path / "history.jsonl"
        history.save(path)
        loaded = TrainingHistory.load(path)
        assert loaded == history
        assert isinstance(loaded, TrainingHistory)
        assert loaded.series("reward") == [1.0, 2.0]
        assert loaded.last("eval") == 0.9

    def test_empty_series_survive(self, tmp_path):
        history = TrainingHistory(reward=[], critic_loss=[])
        path = tmp_path / "history.jsonl"
        history.save(path)
        loaded = TrainingHistory.load(path)
        assert loaded == {"reward": [], "critic_loss": []}

    def test_file_is_one_sorted_series_per_line(self, tmp_path):
        history = TrainingHistory()
        history.record(b=1.0, a=2.0)
        path = tmp_path / "history.jsonl"
        history.save(path)
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["series"] for r in records] == ["a", "b"]
        assert records[0]["values"] == [2.0]

    def test_loaded_history_keeps_recording(self, tmp_path):
        history = TrainingHistory()
        history.record(reward=1.0)
        path = tmp_path / "history.jsonl"
        history.save(path)
        loaded = TrainingHistory.load(path)
        loaded.record(reward=3.0)
        assert loaded.series("reward") == [1.0, 3.0]

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"series": "reward", "values": [1.5]}\n\n')
        loaded = TrainingHistory.load(path)
        assert loaded.series("reward") == [1.5]
