"""MetricsRegistry concurrency: threads hammer, nothing is lost or torn.

The registry is shared between the asyncio event loop (admission-side
counters) and the engine executor thread (solve-side perf merges), so
every primitive write and every composite read must hold the internal
lock.  These tests hammer the registry from real threads and assert the
final state is exact — a lost increment or a snapshot taken mid-merge
fails loudly.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.datasets.instances import InstanceOptions, generate_instances
from repro.obs import MetricsRegistry
from repro.serve import ServeConfig, SolverService, WarmEngine
from repro.smore import SMORESolver, TASNet, TASNetConfig, TASNetPolicy
from repro.tsptw import InsertionSolver

THREADS = 8
ROUNDS = 400


def _hammer(registry, barrier, errors):
    try:
        barrier.wait(timeout=10.0)
        for i in range(ROUNDS):
            registry.inc("hammer.count")
            registry.inc("hammer.bulk", 3)
            registry.gauge("hammer.gauge", i)
            registry.add_time("hammer.time", 0.001)
            registry.observe("hammer.hist", float(i % 50))
    except Exception as exc:  # pragma: no cover - surfaced via `errors`
        errors.append(exc)


class TestThreadedRegistry:
    def test_no_lost_updates_under_contention(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(THREADS)
        errors: list[Exception] = []
        workers = [threading.Thread(target=_hammer,
                                    args=(registry, barrier, errors))
                   for _ in range(THREADS)]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=30.0)
        assert not errors
        assert registry.counters["hammer.count"] == THREADS * ROUNDS
        assert registry.counters["hammer.bulk"] == 3 * THREADS * ROUNDS
        assert registry.gauges["hammer.gauge"] == ROUNDS - 1
        assert registry.timings["hammer.time"] == \
            pytest.approx(0.001 * THREADS * ROUNDS)
        assert registry.histograms["hammer.hist"].count == THREADS * ROUNDS

    def test_concurrent_merge_snapshot_keeps_totals(self):
        """Writers and a merger race; counter totals still add up."""
        registry = MetricsRegistry()
        child = MetricsRegistry()
        child.inc("merged.count", 1)
        child.observe("merged.hist", 1.0)
        snapshot = child.snapshot()
        barrier = threading.Barrier(2)

        def merge_loop():
            barrier.wait(timeout=10.0)
            for _ in range(ROUNDS):
                registry.merge_snapshot(snapshot)

        def write_loop():
            barrier.wait(timeout=10.0)
            for _ in range(ROUNDS):
                registry.inc("merged.count")
                registry.observe("merged.hist", 2.0)

        threads = [threading.Thread(target=merge_loop),
                   threading.Thread(target=write_loop)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert registry.counters["merged.count"] == 2 * ROUNDS
        assert registry.histograms["merged.hist"].count == 2 * ROUNDS

    def test_snapshot_readers_race_writers_without_tearing(self):
        """snapshot()/histogram_summary() during writes never throws and
        always sees an internally consistent histogram."""
        registry = MetricsRegistry()
        stop = threading.Event()
        errors: list[Exception] = []

        def writer():
            i = 0
            while not stop.is_set():
                registry.inc("race.count")
                registry.observe("race.hist", float(i % 100))
                i += 1

        def reader():
            try:
                while not stop.is_set():
                    snap = registry.snapshot()
                    hist = snap["histograms"].get("race.hist")
                    if hist is not None:
                        # A torn read would break count >= len(values).
                        assert hist["count"] >= len(hist["values"])
                    summary = registry.histogram_summary("race.hist")
                    if summary["count"]:
                        assert summary["min"] <= summary["p50"] <= \
                            summary["max"]
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader)]
        for t in threads:
            t.start()
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors


class TestAsyncioServiceConcurrency:
    def test_stats_polled_from_thread_while_serving(self):
        """A foreign thread polls stats()/write paths while the asyncio
        service fields a concurrent burst — no exception, exact counts."""
        instance = generate_instances(
            "delivery", 1, seed=20,
            options=InstanceOptions(task_density=0.02, budget=100.0))[0]
        grid = instance.coverage.grid
        net = TASNet(TASNetConfig(d_model=16, num_heads=2, num_layers=1,
                                  conv_channels=4),
                     grid_nx=grid.nx, grid_ny=grid.ny,
                     rng=np.random.default_rng(0))
        engine = WarmEngine(SMORESolver(InsertionSolver(), TASNetPolicy(net)))
        service = SolverService(engine, ServeConfig(max_batch_size=4))
        stop = threading.Event()
        errors: list[Exception] = []

        def poll():
            try:
                while not stop.is_set():
                    stats = service.stats()
                    assert stats["responses"] <= stats["requests"]
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        poller = threading.Thread(target=poll)
        poller.start()

        async def burst():
            async with service:
                results = await asyncio.gather(
                    *(service.solve(instance) for _ in range(12)))
            return results

        try:
            results = asyncio.run(burst())
        finally:
            stop.set()
            poller.join(timeout=30.0)
        assert not errors
        assert len(results) == 12
        assert service.stats()["requests"] == 12
        assert service.stats()["responses"] == 12
