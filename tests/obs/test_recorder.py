"""Flight recorder: journal schema, digests, read/replay round trips."""

import json

import numpy as np
import pytest

from repro.datasets import InstanceOptions, generate_instances
from repro.obs.recorder import (
    JOURNAL_SCHEMA_VERSION,
    FlightRecorder,
    JournalError,
    read_journal,
    replay_journal,
    solution_digest,
)
from repro.serve import WarmEngine
from repro.smore import SMORESolver, TASNet, TASNetConfig, TASNetPolicy
from repro.tsptw import InsertionSolver

CONFIG = TASNetConfig(d_model=16, num_heads=2, num_layers=1, conv_channels=4)


@pytest.fixture(scope="module")
def instances():
    opts = InstanceOptions(task_density=0.03, budget=120.0)
    return generate_instances("delivery", 3, seed=7, options=opts)


def _engine(instances):
    grid = instances[0].coverage.grid
    net = TASNet(CONFIG, grid_nx=grid.nx, grid_ny=grid.ny,
                 rng=np.random.default_rng(0))
    return WarmEngine(SMORESolver(InsertionSolver(), TASNetPolicy(net)))


class TestSolutionDigest:
    def test_digest_is_deterministic(self, instances):
        engine = _engine(instances)
        a = engine.solver.solve(instances[0])
        b = engine.solver.solve(instances[0])
        assert solution_digest(a) == solution_digest(b)

    def test_digest_distinguishes_instances(self, instances):
        engine = _engine(instances)
        a = engine.solver.solve(instances[0])
        b = engine.solver.solve(instances[1])
        assert solution_digest(a) != solution_digest(b)


class TestJournalRoundTrip:
    def test_write_read(self, tmp_path, instances):
        path = tmp_path / "j.jsonl"
        rec = FlightRecorder(path, workload={"mode": "delivery"})
        rec.register_instances(instances)
        rec.record_request(0, instances[0], greedy=True, seed=None,
                           num_samples=1)
        rec.record_request(1, instances[1], greedy=False, seed=42,
                           num_samples=3, timeout=2.0)
        rec.record_outcome(0, "ok", digest="abc", latency_ms=1.5)
        rec.record_outcome(1, "shed_deadline")
        rec.close()
        assert rec.closed
        rec.close()  # idempotent

        journal = read_journal(path)
        assert journal.complete
        assert journal.workload == {"mode": "delivery"}
        assert [r["req"] for r in journal.requests] == [0, 1]
        assert journal.requests[0]["instance"] == 0
        assert journal.requests[1] == {
            "type": "request", "req": 1, "instance": 1, "greedy": False,
            "seed": 42, "num_samples": 3, "timeout": 2.0}
        assert journal.outcomes[0]["digest"] == "abc"
        assert journal.outcomes[1]["outcome"] == "shed_deadline"

    def test_unregistered_instance_is_minus_one(self, tmp_path, instances):
        rec = FlightRecorder(tmp_path / "j.jsonl")
        rec.record_request(0, instances[0], greedy=True, seed=None,
                           num_samples=1)
        rec.close()
        journal = read_journal(tmp_path / "j.jsonl")
        assert journal.requests[0]["instance"] == -1

    def test_missing_footer_marks_incomplete(self, tmp_path, instances):
        path = tmp_path / "crash.jsonl"
        rec = FlightRecorder(path)
        rec.record_request(0, instances[0], greedy=True, seed=None,
                           num_samples=1)
        rec._file.close()                     # simulate a crash: no footer
        journal = read_journal(path)
        assert not journal.complete
        assert len(journal.requests) == 1

    def test_emit_after_close_raises(self, tmp_path, instances):
        rec = FlightRecorder(tmp_path / "j.jsonl")
        rec.close()
        with pytest.raises(JournalError):
            rec.record_request(0, instances[0], greedy=True, seed=None,
                               num_samples=1)

    def test_no_header_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "request", "req": 0}\n')
        with pytest.raises(JournalError, match="no header"):
            read_journal(path)

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(
            {"type": "header",
             "schema_version": JOURNAL_SCHEMA_VERSION + 1}) + "\n")
        with pytest.raises(JournalError, match="schema"):
            read_journal(path)

    def test_corrupt_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text(json.dumps(
            {"type": "header",
             "schema_version": JOURNAL_SCHEMA_VERSION}) + "\n"
            + '{"type": "request", "req"')
        with pytest.raises(JournalError, match=":2"):
            read_journal(path)


class TestReplay:
    def test_replay_matches_recorded_digests(self, tmp_path, instances):
        engine = _engine(instances)
        path = tmp_path / "j.jsonl"
        rec = FlightRecorder(path)
        rec.register_instances(instances)
        # Record a mixed greedy/sampled workload executed directly.
        for i in range(6):
            inst = instances[i % len(instances)]
            greedy = i % 2 == 0
            seed = None if greedy else 100 + i
            rec.record_request(i, inst, greedy=greedy, seed=seed,
                               num_samples=1 if greedy else 2)
            batch = engine.open_batch(max_size=1)
            rng = np.random.default_rng(seed) if seed is not None else None
            ticket = batch.admit(inst, greedy=greedy, rng=rng,
                                 num_samples=1 if greedy else 2)
            solution = engine.execute(batch)[ticket]
            rec.record_outcome(i, "ok", digest=solution_digest(solution))
        rec.close()

        journal = read_journal(path)
        fresh = _engine(instances)       # replay against fresh state
        report = replay_journal(journal, fresh, instances)
        assert report.ok
        assert report.replayed == report.matched == 6
        assert report.skipped == 0
        assert "6/6" in report.render()

    def test_replay_skips_non_ok_and_unregistered(self, tmp_path, instances):
        engine = _engine(instances)
        path = tmp_path / "j.jsonl"
        rec = FlightRecorder(path)
        rec.register_instances(instances[:1])
        rec.record_request(0, instances[0], greedy=True, seed=None,
                           num_samples=1)
        rec.record_outcome(0, "shed_deadline")          # no solution
        rec.record_request(1, instances[1], greedy=True, seed=None,
                           num_samples=1)               # unregistered: -1
        rec.record_outcome(1, "ok", digest="whatever")
        rec.close()
        report = replay_journal(read_journal(path), engine, instances[:1])
        assert report.skipped == 2
        assert report.replayed == 0
        assert report.ok

    def test_replay_flags_mismatch(self, tmp_path, instances):
        engine = _engine(instances)
        path = tmp_path / "j.jsonl"
        rec = FlightRecorder(path)
        rec.register_instances(instances)
        rec.record_request(0, instances[0], greedy=True, seed=None,
                           num_samples=1)
        rec.record_outcome(0, "ok", digest="0" * 64, latency_ms=1.0)
        rec.close()
        report = replay_journal(read_journal(path), engine, instances)
        assert not report.ok
        assert report.mismatches[0]["req"] == 0
        assert "MISMATCH" in report.render()
