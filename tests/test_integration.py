"""End-to-end integration tests across all modules.

These exercise the complete pipeline — dataset generation, candidate
initialisation, policy decisions, environment transitions, solution
validation — at a scale small enough for CI but with nothing mocked.
"""

import numpy as np
import pytest

from repro.baselines import (
    JDRLSolver,
    MSAConfig,
    MSAGISolver,
    MSASolver,
    RandomSolver,
    TCPGSolver,
    TVPGSolver,
)
from repro.core import IncentiveModel
from repro.datasets import InstanceOptions, generate_instances
from repro.smore import (
    GreedySelectionRule,
    RatioSelectionRule,
    SMORESolver,
    TASNet,
    TASNetConfig,
    TASNetPolicy,
    TASNetTrainer,
    TrainingConfig,
    imitation_pretrain,
)
from repro.tsptw import CachedPlanner, ExactDPSolver, InsertionSolver


@pytest.fixture(scope="module")
def instances():
    options = InstanceOptions(task_density=0.08)
    return generate_instances("delivery", 3, seed=11, options=options)


@pytest.fixture(scope="module")
def tiny_net():
    return TASNet(
        TASNetConfig(d_model=8, num_heads=2, num_layers=1, conv_channels=2),
        grid_nx=10, grid_ny=12, rng=np.random.default_rng(0))


class TestFullPipeline:
    def test_every_solver_on_every_instance(self, instances, tiny_net):
        msa_config = MSAConfig(num_starts=1, iterations_per_round=20,
                               patience_rounds=1, time_limit=5.0)
        solvers = [
            RandomSolver(seed=1),
            TVPGSolver(),
            TCPGSolver(),
            MSASolver(msa_config, seed=2),
            MSAGISolver(msa_config, seed=2),
            JDRLSolver(seed=3),
            SMORESolver(InsertionSolver(), TASNetPolicy(tiny_net)),
            SMORESolver(InsertionSolver(), GreedySelectionRule()),
            SMORESolver(InsertionSolver(), RatioSelectionRule()),
        ]
        for instance in instances:
            for solver in solvers:
                solution = solver.solve(instance)
                problems = solution.validate()
                assert problems == [], (solution.solver_name, problems)

    def test_incentives_consistent_across_framework(self, instances):
        """Every solver's recorded incentives match Definition 6 exactly."""
        planner = InsertionSolver()
        model = IncentiveModel(
            mu=instances[0].mu,
            base_rtt_fn=lambda w: planner.base_route(w).route_travel_time)
        solution = SMORESolver(planner, RatioSelectionRule()).solve(instances[0])
        assert solution.validate(model) == []

    def test_cached_planner_transparent(self, instances):
        plain = SMORESolver(InsertionSolver(), RatioSelectionRule()).solve(
            instances[0])
        cached = SMORESolver(CachedPlanner(InsertionSolver()),
                             RatioSelectionRule()).solve(instances[0])
        assert cached.objective == pytest.approx(plain.objective)

    def test_training_then_solving_roundtrip(self, instances, tmp_path):
        from repro import nn

        net = TASNet(
            TASNetConfig(d_model=8, num_heads=2, num_layers=1,
                         conv_channels=2),
            grid_nx=10, grid_ny=12, rng=np.random.default_rng(1))
        policy = TASNetPolicy(net)
        planner = InsertionSolver()
        imitation_pretrain(policy, planner, instances, iterations=3, seed=0)
        trainer = TASNetTrainer(policy, planner,
                                TrainingConfig(iterations=2, batch_size=1))
        trainer.train(instances)

        # Serialise, reload into a fresh net, verify identical decisions.
        path = tmp_path / "tasnet.npz"
        nn.save_module(net, path)
        fresh = TASNet(
            TASNetConfig(d_model=8, num_heads=2, num_layers=1,
                         conv_channels=2),
            grid_nx=10, grid_ny=12, rng=np.random.default_rng(999))
        nn.load_module(fresh, path)
        a = SMORESolver(planner, TASNetPolicy(net)).solve(instances[0])
        b = SMORESolver(planner, TASNetPolicy(fresh)).solve(instances[0])
        assert a.objective == pytest.approx(b.objective)
        assert {t.task_id for t in a.completed_tasks} == \
            {t.task_id for t in b.completed_tasks}


class TestAgainstExactPlanning:
    def test_smore_with_exact_planner_small_instance(self):
        """SMORE runs unchanged on the optimal (exponential) backend."""
        options = InstanceOptions(task_density=0.02)
        instance = generate_instances("delivery", 1, seed=5,
                                      options=options)[0]
        # Keep worker task counts DP-sized.
        if any(w.num_travel_tasks > 8 for w in instance.workers):
            pytest.skip("sampled instance too large for exact DP")
        solver = SMORESolver(ExactDPSolver(), RatioSelectionRule(),
                             name="SMORE-exact")
        solution = solver.solve(instance)
        assert solution.validate() == []

    def test_exact_backend_never_worse_objective(self):
        """With identical selection rules, the optimal planner's cheaper
        routes leave at least as much budget, so coverage cannot drop."""
        options = InstanceOptions(task_density=0.02)
        instance = generate_instances("delivery", 1, seed=5,
                                      options=options)[0]
        if any(w.num_travel_tasks > 8 for w in instance.workers):
            pytest.skip("sampled instance too large for exact DP")
        heuristic = SMORESolver(InsertionSolver(),
                                RatioSelectionRule()).solve(instance)
        exact = SMORESolver(ExactDPSolver(),
                            RatioSelectionRule()).solve(instance)
        assert exact.objective >= heuristic.objective - 0.35


class TestDeterminism:
    def test_greedy_smore_deterministic(self, instances, tiny_net):
        solver = SMORESolver(InsertionSolver(), TASNetPolicy(tiny_net))
        a = solver.solve(instances[0])
        b = solver.solve(instances[0])
        assert a.objective == pytest.approx(b.objective)

    def test_instance_generation_stable_across_runs(self):
        options = InstanceOptions(task_density=0.05)
        a = generate_instances("lade", 1, seed=42, options=options)[0]
        b = generate_instances("lade", 1, seed=42, options=options)[0]
        assert a.workers[0].origin == b.workers[0].origin
        assert a.num_sensing_tasks == b.num_sensing_tasks
