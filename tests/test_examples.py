"""Smoke tests for the runnable examples (the fast ones).

Examples rot silently; importing and running their ``main()`` keeps them
honest.  The slow, training-heavy examples (delivery_campaign,
train_tsptw_solver) are exercised manually / by the benchmarks instead.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = ["quickstart.py", "trajectory_pipeline.py",
                 "tourism_campaign.py"]


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"),
                                                  path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_quickstart_reports_all_solvers(capsys):
    load_example("quickstart.py").main()
    out = capsys.readouterr().out
    assert "SMORE (ratio rule)" in out
    assert "TVPG" in out
    assert "worker 1" in out


def test_tourism_campaign_shows_improvement(capsys):
    load_example("tourism_campaign.py").main()
    out = capsys.readouterr().out
    assert "with SMORE" in out
    assert "cells covered" in out


def test_trajectory_pipeline_exports_json(capsys):
    load_example("trajectory_pipeline.py").main()
    out = capsys.readouterr().out
    assert "dispatch plan" in out
    assert '"objective"' in out
