# SMORE reproduction — common workflows.

.PHONY: install test test-backends bench bench-perf bench-route \
	bench-train bench-serve bench-dynamic bench-ops bench-shard \
	serve-smoke serve-replay-smoke dashboard-smoke profile results \
	full clean

install:
	pip install -e .

test:
	PYTHONPATH=src pytest tests/

# Tier-1 under each repro.nn backend: the suite must pass with the
# fused graph executor as the process default, not just the reference
# object-graph autograd.
test-backends:
	PYTHONPATH=src REPRO_NN_BACKEND=reference pytest tests/
	PYTHONPATH=src REPRO_NN_BACKEND=fused pytest tests/

bench:
	PYTHONPATH=src pytest benchmarks/ --benchmark-only

# Perf-layer regression: planner-call counts, batched-decode throughput,
# profiler attribution/cost + smoke timings (writes one
# results/BENCH_PR<n>.json per PR).
bench-perf:
	PYTHONPATH=src pytest benchmarks/test_perf_regression.py \
		benchmarks/test_profile_regression.py --benchmark-only

# Route-kernel regression: packed-array candidate sweep vs the object
# path (speedup floor + bit-identity; writes results/BENCH_PR5.json).
bench-route:
	PYTHONPATH=src pytest benchmarks/test_route_kernel_regression.py \
		--benchmark-only

# Training-throughput regression: fused backend + cross-instance
# batched decoding vs the reference serial path at paper scale
# (speedup floor + reward parity; writes results/BENCH_PR6.json).
bench-train:
	PYTHONPATH=src pytest benchmarks/test_train_throughput_regression.py \
		--benchmark-only

# Serving-throughput regression: micro-batched SolverService on a warm
# engine vs sequential per-request solves at paper scale (speedup floor
# + bit-parity on every greedy answer; writes results/BENCH_PR7.json
# and the serving trace results/serve_bench_trace.jsonl).
bench-serve:
	PYTHONPATH=src pytest benchmarks/test_serving_regression.py \
		--benchmark-only

# Dynamic-repair regression: incremental candidate-table repair vs a
# per-epoch rebuild over a streamed arrival schedule at paper scale
# (per-event speedup floor + bit-identical episode; writes
# results/BENCH_PR8.json).
bench-dynamic:
	PYTHONPATH=src pytest benchmarks/test_dynamic_regression.py \
		--benchmark-only

# City-scale sharding regression: the partition/solve/merge sweep at
# small P on a mid-size city instance (P=1 bit-identity, >=3x speedup
# at P=4 on the persistent pool, <=2% coverage gap; writes
# results/BENCH_PR10.json + results/shard_scaling.txt).  Set
# REPRO_BENCH_SHARD_FULL=1 to re-measure the 10k-task curve too.
bench-shard:
	PYTHONPATH=src pytest benchmarks/test_shard_regression.py \
		--benchmark-only

# Telemetry regression: 32-request mixed greedy/sampled journal must
# replay bit-identically; full tracing+SLO+journal overhead stays <2%
# over the telemetry-off path (writes results/BENCH_PR9.json).
bench-ops:
	PYTHONPATH=src pytest benchmarks/test_ops_telemetry_regression.py \
		--benchmark-only

# Serving smoke: 32 concurrent in-process requests through the asyncio
# service with per-request greedy parity checked against direct solves;
# serving metrics (latency percentiles, batch sizes, req/s) land in
# results/serve_smoke_metrics.jsonl.
serve-smoke:
	PYTHONPATH=src python -m repro.serve --requests 32 --instances 6 \
		--density 0.04 --check-parity \
		--metrics results/serve_smoke_metrics.jsonl

# Record/replay smoke: a 16-request workload journaled through the live
# asyncio service, then re-executed from the journal against a freshly
# rebuilt engine — the replay exits non-zero unless every solution
# digest is bit-identical.  The SLO report rides along.
serve-replay-smoke:
	PYTHONPATH=src python -m repro.serve --requests 16 --instances 4 \
		--density 0.03 --journal results/serve_replay_journal.jsonl \
		--slo-report results/serve_slo_report.json
	PYTHONPATH=src python -m repro.serve replay \
		results/serve_replay_journal.jsonl

# Dashboard smoke: render one frame off the serving metrics JSONL in
# CI mode (no terminal clearing); fails if the file or schema is off.
dashboard-smoke:
	PYTHONPATH=src python -m repro.serve --requests 8 --instances 2 \
		--density 0.03 --metrics results/dashboard_smoke_metrics.jsonl
	PYTHONPATH=src python -m repro.obs.dashboard \
		results/dashboard_smoke_metrics.jsonl --frames 1 --no-clear

# Op-level autograd profiles of a smoke solve + training run: per-op
# JSONL summaries and collapsed stacks (flamegraph.pl format) under
# profiles/.
profile:
	mkdir -p profiles
	PYTHONPATH=src python -m repro.obs.profile solve \
		--out profiles/solve.jsonl --collapsed profiles/solve.folded
	PYTHONPATH=src python -m repro.obs.profile solve --no-kernels \
		--out profiles/solve_object.jsonl \
		--collapsed profiles/solve_object.folded
	PYTHONPATH=src python -m repro.obs.profile train \
		--out profiles/train.jsonl --collapsed profiles/train.folded
	PYTHONPATH=src REPRO_NN_BACKEND=fused python -m repro.obs.profile train \
		--out profiles/train_fused.jsonl \
		--collapsed profiles/train_fused.folded

# Regenerate every table/figure artifact under results/.
results: bench

# Larger offline runs (slower; see EXPERIMENTS.md).
full:
	python -m repro.experiments table1 --full
	python -m repro.experiments table2 --full
	python -m repro.experiments table3 --full

# Remove generated caches only; results/ holds committed benchmark
# artefacts (results/BENCH_PR*.json) and must survive a clean.
clean:
	rm -rf .cache .benchmarks profiles
