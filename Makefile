# SMORE reproduction — common workflows.

.PHONY: install test bench bench-perf results full clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Perf-layer regression: planner-call counts + smoke timings
# (writes results/BENCH_PR1.json).
bench-perf:
	pytest benchmarks/test_perf_regression.py --benchmark-only

# Regenerate every table/figure artifact under results/.
results: bench

# Larger offline runs (slower; see EXPERIMENTS.md).
full:
	python -m repro.experiments table1 --full
	python -m repro.experiments table2 --full
	python -m repro.experiments table3 --full

clean:
	rm -rf .cache .benchmarks results
