"""Design ablation (beyond the paper): soft-mask lambda sensitivity.

The paper fixes lambda = 0.5 (Section V-B).  This bench sweeps lambda for
an untrained TASNet — isolating the heuristic's contribution from
learning — and records the achieved coverage per value.
"""

import numpy as np

from repro.smore import SMORESolver, TASNet, TASNetConfig, TASNetPolicy
from repro.tsptw import InsertionSolver

from .conftest import write_artifact

LAMBDAS = (0.0, 0.25, 0.5, 1.0)


def test_softmask_lambda_sweep(benchmark, runner, results_dir):
    instances = runner.test_instances("delivery")
    grid = instances[0].coverage.grid

    def run():
        scores = {}
        for lam in LAMBDAS:
            config = TASNetConfig(d_model=16, num_heads=2, num_layers=1,
                                  conv_channels=2, lam=lam,
                                  use_soft_mask=lam > 0.0)
            net = TASNet(config, grid.nx, grid.ny,
                         rng=np.random.default_rng(0))
            solver = SMORESolver(InsertionSolver(), TASNetPolicy(net),
                                 name=f"SMORE[lam={lam}]")
            solutions = [solver.solve(inst) for inst in instances]
            scores[lam] = float(np.mean([s.objective for s in solutions]))
        return scores

    scores = benchmark.pedantic(run, iterations=1, rounds=1)
    lines = ["Ablation — soft-mask lambda (untrained TASNet)", "=" * 48]
    for lam, value in scores.items():
        lines.append(f"  lambda={lam:<5} phi={value:.3f}")
    text = "\n".join(lines)
    write_artifact(results_dir, "ablation_softmask_lambda.txt", text)
    print("\n" + text)

    # With an untrained network, the soft mask is the only signal: any
    # positive lambda should beat the mask-free policy.
    best_masked = max(v for lam, v in scores.items() if lam > 0)
    assert best_masked >= scores[0.0] - 0.05
