"""Table II — effect of the budget (200 / 300 / 400).

Regenerates the budget sweep per dataset; asserts the paper's trend that
the objective grows with the budget and SMORE leads RN everywhere.
"""

import pytest

from repro.experiments import render_grid, table2_budget

from .conftest import objectives_by_method, write_artifact

DATASETS = ("delivery", "tourism", "lade")


@pytest.mark.parametrize("dataset", DATASETS)
def test_table2(benchmark, runner, results_dir, dataset):
    def run():
        return table2_budget(runner, datasets=(dataset,))

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    text = render_grid("Table II — Effect of Budget", results)
    write_artifact(results_dir, f"table2_{dataset}.txt", text)
    print("\n" + text)

    cells = results[dataset]
    smore_by_budget = [objectives_by_method(cells[label])["SMORE"]
                       for label in ("Budget=200", "Budget=300", "Budget=400")]
    # Objective increases with budget (allowing sampling noise headroom).
    assert smore_by_budget[2] > smore_by_budget[0]
    for setting, cell in cells.items():
        objectives = objectives_by_method(cell)
        assert objectives["SMORE"] > objectives["RN"], setting
