"""Reconstruction-robustness ablation: hierarchical-entropy weighting.

The paper does not restate the exact level combination of Ji et al.'s
hierarchical entropy, so this reproduction had to choose one (DESIGN.md).
This bench re-runs the method comparison under all three plausible
weightings — uniform mean, capacity-weighted, finest-only — and checks
that the *conclusions* (SMORE-framework over greedy, greedy over random)
do not depend on the choice.
"""

from dataclasses import replace

import numpy as np

from repro.baselines import RandomSolver, TVPGSolver
from repro.core import CoverageModel, USMDWInstance
from repro.datasets import InstanceOptions, generate_instances
from repro.smore import RatioSelectionRule, SMORESolver
from repro.tsptw import InsertionSolver

from .conftest import write_artifact

SCHEMES = ("mean", "capacity", "finest")


def _with_weighting(instance: USMDWInstance, scheme: str) -> USMDWInstance:
    coverage = CoverageModel(
        instance.coverage.grid, instance.coverage.time_span,
        instance.coverage.slot_minutes, alpha=instance.coverage.alpha,
        level_weighting=scheme)
    return USMDWInstance(
        workers=instance.workers, sensing_tasks=instance.sensing_tasks,
        budget=instance.budget, mu=instance.mu, coverage=coverage,
        speed=instance.speed, name=f"{instance.name}-{scheme}")


def test_entropy_weighting_robustness(benchmark, runner, results_dir):
    options = InstanceOptions(task_density=0.15)
    base_instances = generate_instances("delivery", 2, seed=100,
                                        options=options)

    solvers = {
        "SMORE": lambda: SMORESolver(InsertionSolver(), RatioSelectionRule(),
                                     name="SMORE"),
        "TVPG": TVPGSolver,
        "RN": lambda: RandomSolver(seed=1),
    }

    def run():
        table = {}
        for scheme in SCHEMES:
            instances = [_with_weighting(inst, scheme)
                         for inst in base_instances]
            row = {}
            for name, factory in solvers.items():
                row[name] = float(np.mean(
                    [factory().solve(inst).objective for inst in instances]))
            table[scheme] = row
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    lines = ["Reconstruction robustness — entropy level weighting", "=" * 54]
    for scheme, row in table.items():
        cells = " ".join(f"{name}={value:.3f}" for name, value in row.items())
        lines.append(f"  {scheme:<9} {cells}")
    text = "\n".join(lines)
    write_artifact(results_dir, "ablation_entropy_weighting.txt", text)
    print("\n" + text)

    # The ordering the paper's conclusions rest on must hold under every
    # plausible reconstruction of the hierarchical entropy.
    for scheme, row in table.items():
        assert row["SMORE"] >= row["TVPG"] - 0.03, scheme
        assert row["TVPG"] > row["RN"], scheme
