"""Profile regression bench (PR 4): ``results/BENCH_PR4.json``.

Pins the op-level autograd profiler (:mod:`repro.obs.profile`) on
paper-scale workloads:

- **Attribution** — profiling one TASNet training epoch at the paper's
  network scale (d_model 128, 8 heads, 3 encoder layers) must attribute
  at least 95% of the epoch's wall time to named ops and scopes: the
  self time left on the outer ``epoch`` scope (time no instrumented op,
  backward closure, optimizer region, or inner scope claimed) stays
  below 5%.
- **FLOP fidelity** — the profiler-recorded matmul FLOPs for the
  decode's attention core, run batched at the decode's own shape
  (``num_samples`` rollouts over the instance's task set), match the
  closed-form count from :meth:`MultiHeadAttention.forward_flops`
  within 1%.
- **Disabled cost** — with the null hook installed every instrumented
  op is one ``enabled`` check; the unit cost of that check times the
  number of instrumentation points a profiled solve records stays
  below 2% of the unprofiled solve's wall time.
- **Transparency** — a profiled batched solve returns the bit-identical
  objective to an unprofiled one (profiling observes, never perturbs).

The per-op tables (top ops by time and by FLOPs, peak live tensor
bytes) go into the artefact so attribution drift shows up as a diff.
"""

import time

import numpy as np

from repro import nn
from repro.datasets import InstanceOptions, generate_instances
from repro.nn.tensor import instrument_op
from repro.obs.profile import OpProfiler, profiling, scope
from repro.smore import (SMORESolver, TASNet, TASNetConfig, TASNetPolicy,
                         TASNetTrainer, TrainingConfig)
from repro.tsptw import InsertionSolver

from .conftest import write_bench

NUM_SAMPLES = 4
D_MODEL = 128
NUM_HEADS = 8
NUM_LAYERS = 3
MAX_UNACCOUNTED = 0.05
MAX_FLOP_ERROR = 0.01
MAX_DISABLED_OVERHEAD = 0.02
NOOP_REPS = 100_000
TOP_OPS = 8


def _paper_policy(instance, seed=0):
    grid = instance.coverage.grid
    net = TASNet(TASNetConfig(d_model=D_MODEL, num_heads=NUM_HEADS,
                              num_layers=NUM_LAYERS),
                 grid_nx=grid.nx, grid_ny=grid.ny,
                 rng=np.random.default_rng(seed))
    return TASNetPolicy(net)


def _top_ops(profiler, key, limit=TOP_OPS):
    rows = [(name, stat) for name, stat in profiler.ops.items()
            if stat.kind != "scope"]
    rows.sort(key=lambda item: key(item[1]), reverse=True)
    return [{"op": name, "calls": stat.calls,
             "seconds": stat.seconds, "flops": stat.total_flops}
            for name, stat in rows[:limit]]


def _disabled_unit_cost():
    """Per-call cost of the instrumentation wrapper with the null hook."""

    def noop(x):
        return x

    wrapped = instrument_op(noop, "bench_noop")
    start = time.perf_counter()
    for _ in range(NOOP_REPS):
        wrapped(None)
    wrapped_cost = (time.perf_counter() - start) / NOOP_REPS
    start = time.perf_counter()
    for _ in range(NOOP_REPS):
        noop(None)
    raw_cost = (time.perf_counter() - start) / NOOP_REPS
    return max(wrapped_cost - raw_cost, 0.0)


def test_profile_regression(benchmark, results_dir):
    def run():
        options = InstanceOptions(task_density=0.15)
        instance = generate_instances("delivery", 1, seed=100,
                                      options=options)[0]

        # -- paper-scale epoch: wall-time attribution ------------------ #
        trainer = TASNetTrainer(
            _paper_policy(instance), InsertionSolver(),
            TrainingConfig(iterations=1, batch_size=1,
                           rollouts_per_instance=2, seed=0))
        epoch_profiler = OpProfiler()
        with profiling(profiler=epoch_profiler):
            with scope("epoch"):
                trainer.train_iteration([instance])
        epoch_wall = epoch_profiler.ops["epoch"].fwd_seconds
        unaccounted = epoch_profiler.self_seconds("epoch")
        backward_flops = sum(stat.bwd_flops
                             for stat in epoch_profiler.ops.values())

        # -- batched solve: transparency + disabled-hook cost ---------- #
        solver = SMORESolver(InsertionSolver(), _paper_policy(instance))
        start = time.perf_counter()
        plain = solver.solve(instance, num_samples=NUM_SAMPLES,
                             rng=np.random.default_rng(0))
        plain_time = time.perf_counter() - start

        solve_profiler = OpProfiler()
        with profiling(profiler=solve_profiler):
            with scope("workload.solve"):
                start = time.perf_counter()
                profiled = solver.solve(instance, num_samples=NUM_SAMPLES,
                                        rng=np.random.default_rng(0))
                profiled_time = time.perf_counter() - start

        # Each op call is one ``enabled`` check when disabled; tensor
        # construction and backward-walk checks ride on the same flag,
        # so count forward calls twice plus every backward sample.
        points = sum(2 * stat.fwd_calls + stat.bwd_calls
                     for stat in solve_profiler.ops.values())
        unit_cost = _disabled_unit_cost()
        disabled_overhead = unit_cost * points / plain_time

        # -- decode attention core: closed-form FLOP agreement --------- #
        n_tasks = instance.num_sensing_tasks
        mha = nn.MultiHeadAttention(D_MODEL, NUM_HEADS,
                                    rng=np.random.default_rng(1))
        x = nn.Tensor(np.random.default_rng(2).normal(
            size=(NUM_SAMPLES, n_tasks, D_MODEL)))
        mha_profiler = OpProfiler()
        with profiling(profiler=mha_profiler):
            mha(x)
        recorded_flops = mha_profiler.ops["matmul"].flops
        closed_form = mha.forward_flops(n_tasks, batch=NUM_SAMPLES,
                                        matmul_only=True)
        flop_error = abs(recorded_flops - closed_form) / closed_form

        return {
            "instance": {"W": instance.num_workers,
                         "S": instance.num_sensing_tasks,
                         "num_samples": NUM_SAMPLES},
            "network": {"d_model": D_MODEL, "num_heads": NUM_HEADS,
                        "num_layers": NUM_LAYERS},
            "epoch": {
                "wall_time": epoch_wall,
                "unaccounted_seconds": unaccounted,
                "unaccounted_fraction": unaccounted / epoch_wall,
                "flops": epoch_profiler.total_flops(),
                "backward_flops": backward_flops,
                "peak_live_bytes": epoch_profiler.peak_live_bytes,
                "history_profile_flops":
                    trainer.history.last("profile_flops"),
                "top_ops_by_time": _top_ops(
                    epoch_profiler, lambda stat: stat.seconds),
            },
            "solve": {
                "wall_time_plain": plain_time,
                "wall_time_profiled": profiled_time,
                "enabled_ratio": profiled_time / plain_time,
                "phi_plain": plain.objective,
                "phi_profiled": profiled.objective,
                "instrumentation_points": points,
                "disabled_unit_seconds": unit_cost,
                "disabled_overhead": disabled_overhead,
                "top_ops_by_flops": _top_ops(
                    solve_profiler, lambda stat: stat.total_flops),
            },
            "decode_attention_flops": {
                "batch": NUM_SAMPLES, "n": n_tasks,
                "recorded": recorded_flops,
                "closed_form": closed_form,
                "relative_error": flop_error,
            },
        }

    record = benchmark.pedantic(run, iterations=1, rounds=1)
    text = write_bench(results_dir, 4, record)
    print("\n" + text)

    # >= 95% of the epoch's wall time lands on named ops and scopes.
    assert record["epoch"]["unaccounted_fraction"] < MAX_UNACCOUNTED
    # The hot path is attributed: matmul shows up with real FLOPs, the
    # backward walk is costed, and the live-tensor watermark moved.
    top_names = [row["op"] for row in record["epoch"]["top_ops_by_time"]]
    assert "matmul" in top_names
    assert record["epoch"]["backward_flops"] > 0
    assert record["epoch"]["peak_live_bytes"] > 0
    assert record["epoch"]["history_profile_flops"] == \
        record["epoch"]["flops"]
    # Profiling observes without perturbing the computation.
    assert record["solve"]["phi_profiled"] == record["solve"]["phi_plain"]
    # The disabled hook's share of an unprofiled solve stays negligible.
    assert record["solve"]["instrumentation_points"] > 0
    assert record["solve"]["disabled_overhead"] < MAX_DISABLED_OVERHEAD
    # Recorded FLOPs agree with the closed-form attention count.
    assert record["decode_attention_flops"]["relative_error"] \
        <= MAX_FLOP_ERROR
