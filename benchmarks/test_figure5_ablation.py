"""Figure 5 — ablation study of SMORE's main designs.

Trains the three ablated variants per dataset (at benchmark scale) and
compares them to full SMORE; asserts the paper's headline: full SMORE
tops each ablated variant on average across datasets.
"""

import numpy as np
import pytest

from repro.experiments import figure5_ablation, render_figure5

from .conftest import write_artifact

DATASETS = ("delivery", "tourism", "lade")


def test_figure5(benchmark, runner, results_dir):
    def run():
        return figure5_ablation(runner, datasets=DATASETS)

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    text = render_figure5(results)
    write_artifact(results_dir, "figure5.txt", text)
    print("\n" + text)

    by_variant: dict[str, list[float]] = {}
    for rows in results.values():
        for result in rows:
            by_variant.setdefault(result.method, []).append(
                result.objective_mean)
    means = {variant: float(np.mean(vals))
             for variant, vals in by_variant.items()}

    # Full SMORE is the best variant on average (paper Figure 5); allow a
    # small tolerance for the single-run noise of the benchmark profile.
    for variant, mean in means.items():
        if variant == "SMORE":
            continue
        assert means["SMORE"] >= 0.97 * mean, (variant, means)
