"""Shared machinery for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at the
``fast`` run profile (scaled-down instances, CPU-sized networks, trained
policies cached under ``.cache/pretrained``), times it once via
pytest-benchmark's pedantic mode, writes the rendered text artefact to
``results/`` and asserts the coarse shape the paper reports.

Run with::

    pytest benchmarks/ --benchmark-only

The ``--full`` scale can be reproduced offline with
``python -m repro.experiments table1 --full`` etc.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.baselines import MSAConfig
from repro.experiments import ExperimentRunner, RunProfile
from repro.experiments.pretrained import PretrainSpec

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Benchmark profile: small enough that the whole suite finishes in
#: minutes, large enough that the paper's orderings are visible.
BENCH_PRETRAIN = PretrainSpec(
    num_train=12, num_val=2, imitation_iterations=40, rl_iterations=20,
    imitation_lr=3e-3, rl_lr=5e-4,
    d_model=16, num_heads=2, num_layers=1, conv_channels=2,
    task_density=0.15,
)

BENCH_PROFILE = RunProfile(
    name="bench",
    num_test_instances=2,
    task_density=0.15,
    msa=MSAConfig(num_starts=1, iterations_per_round=60,
                  patience_rounds=2, time_limit=15.0),
    pretrain=BENCH_PRETRAIN,
)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide runner; trained policies cache across benchmarks."""
    return ExperimentRunner(profile=BENCH_PROFILE, seed=100)


def write_artifact(results_dir: Path, name: str, text: str) -> None:
    path = results_dir / name
    path.write_text(text + "\n")


def write_bench(results_dir: Path, pr: int, record: dict) -> str:
    """Write one PR's perf record to ``results/BENCH_PR{pr}.json``.

    Each PR that lands a performance change appends its own artefact, so
    a regression shows up as a diff against the committed file rather
    than silently overwriting an earlier PR's baseline.
    """
    text = json.dumps(record, indent=2, sort_keys=True)
    write_artifact(results_dir, f"BENCH_PR{pr}.json", text)
    return text


def objectives_by_method(results: list) -> dict[str, float]:
    return {r.method: r.objective_mean for r in results}
