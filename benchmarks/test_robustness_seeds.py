"""Seed-robustness check of the headline claim.

The paper's +5.2% is a *per-method mean* over many test instances.  This
bench re-draws the test set under several seeds and compares method means
(the paper's statistic) plus per-seed win counts, guarding the headline
result against single-seed luck.  It also reports the sample-and-select
inference extension (greedy rollout + 3 sampled rollouts, keep best).
"""

import numpy as np

from repro.baselines import TCPGSolver, TVPGSolver
from repro.datasets import InstanceOptions, generate_instances
from repro.smore import SMORESolver
from repro.tsptw import InsertionSolver

from .conftest import write_artifact

SEEDS = (100, 200, 300, 400, 500)


def test_seed_robustness(benchmark, runner, results_dir):
    from repro.experiments.pretrained import get_trained_policy

    policy = get_trained_policy("delivery", spec=runner.profile.pretrain,
                                cache_dir=runner.cache_dir)
    options = InstanceOptions(task_density=runner.profile.task_density)

    def run():
        values = {"SMORE": [], "SMORE (4 samples)": [], "TVPG": [],
                  "TCPG": []}
        for seed in SEEDS:
            instance = generate_instances("delivery", 1, seed=seed,
                                          options=options)[0]
            solver = SMORESolver(InsertionSolver(), policy)
            values["SMORE"].append(solver.solve(instance).objective)
            values["SMORE (4 samples)"].append(
                solver.solve(instance, num_samples=4,
                             rng=np.random.default_rng(seed)).objective)
            values["TVPG"].append(TVPGSolver().solve(instance).objective)
            values["TCPG"].append(TCPGSolver().solve(instance).objective)
        return values

    values = benchmark.pedantic(run, iterations=1, rounds=1)
    means = {name: float(np.mean(v)) for name, v in values.items()}

    lines = ["Seed robustness — per-method means over 5 fresh seeds "
             "(Delivery)", "=" * 60]
    for name, series in values.items():
        cells = " ".join(f"{v:.3f}" for v in series)
        lines.append(f"  {name:<18} {cells}  mean={means[name]:.3f}")
    best_greedy = max(means["TVPG"], means["TCPG"])
    lines.append(f"  SMORE uplift over best greedy mean: "
                 f"{means['SMORE'] / best_greedy - 1.0:+.1%} "
                 f"(with sampling: "
                 f"{means['SMORE (4 samples)'] / best_greedy - 1.0:+.1%})")
    text = "\n".join(lines)
    write_artifact(results_dir, "robustness_seeds.txt", text)
    print("\n" + text)

    # The paper's statistic: SMORE's mean beats every baseline's mean.
    assert means["SMORE"] >= means["TVPG"] - 1e-9
    assert means["SMORE"] >= means["TCPG"] - 1e-9
    # Per-seed, SMORE wins against each individual method at least as
    # often as it loses.
    for rival in ("TVPG", "TCPG"):
        wins = sum(s >= r - 1e-9
                   for s, r in zip(values["SMORE"], values[rival]))
        assert wins * 2 >= len(SEEDS) - 1, rival
    # Sampling never hurts (the greedy rollout is in the pool).
    assert means["SMORE (4 samples)"] >= means["SMORE"] - 1e-9