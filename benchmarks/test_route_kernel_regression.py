"""Perf regression bench for PR 5 (vectorized route kernels).

Pins the packed-array insertion sweep's win over the object path at
paper smoke scale, and its exactness:

- candidate-table initialisation — the O(|W| x |S|) all-pairs sweep — is
  at least ``MIN_SWEEP_SPEEDUP``x faster with a kernel planner bound to
  the instance than with the looped object path, while discovering the
  identical candidate set with the identical ``planner_calls``;
- a full sample-and-select solve is bit-identical (objective and
  counters) with kernels on or off, and no slower with them on.

Timings land in ``results/BENCH_PR5.json`` (a CI artifact), so a
regression shows up as a diff; the assertion pins the speedup ratio
(absolute wall time is hardware-dependent).
"""

import time

import numpy as np

from repro.core import IncentiveModel
from repro.datasets import InstanceOptions, generate_instances
from repro.smore import CandidateTable, RatioSelectionRule, SMORESolver
from repro.tsptw import InsertionSolver

from .conftest import write_bench

NUM_SAMPLES = 4
BENCH_ROUNDS = 5
MIN_SWEEP_SPEEDUP = 3.0


def _init_candidates(instance, use_kernels):
    """One candidate-table initialisation; returns (table, seconds)."""
    planner = InsertionSolver(speed=instance.speed, use_kernels=use_kernels)
    if use_kernels:
        planner.bind_instance(instance)
    table = CandidateTable(planner, IncentiveModel(mu=instance.mu))
    start = time.perf_counter()
    table.initialize(instance.workers, instance.sensing_tasks,
                     instance.budget)
    return table, time.perf_counter() - start


def test_route_kernel_regression(benchmark, results_dir):
    def run():
        options = InstanceOptions(task_density=0.15)
        instance = generate_instances("delivery", 1, seed=100,
                                      options=options)[0]

        # Alternate the paths and keep each one's fastest round: the
        # minimum is the scheduler-noise-free estimate.
        kernel_time = object_time = float("inf")
        for _ in range(BENCH_ROUNDS):
            kernel_table, elapsed = _init_candidates(instance, True)
            kernel_time = min(kernel_time, elapsed)
            object_table, elapsed = _init_candidates(instance, False)
            object_time = min(object_time, elapsed)

        def timed_solve(use_kernels):
            planner = InsertionSolver(speed=instance.speed,
                                      use_kernels=use_kernels)
            solver = SMORESolver(planner, RatioSelectionRule())
            start = time.perf_counter()
            solution = solver.solve(instance, num_samples=NUM_SAMPLES,
                                    rng=np.random.default_rng(0))
            return solution, time.perf_counter() - start

        kernel_sol, kernel_solve_time = timed_solve(True)
        object_sol, object_solve_time = timed_solve(False)

        return {
            "instance": {"W": instance.num_workers,
                         "S": instance.num_sensing_tasks,
                         "num_samples": NUM_SAMPLES},
            "candidate_init": {
                "kernel_seconds": kernel_time,
                "object_seconds": object_time,
                "speedup": object_time / kernel_time,
                "pairs_kernel": kernel_table.num_pairs(),
                "pairs_object": object_table.num_pairs(),
                "planner_calls_kernel": kernel_table.planner_calls,
                "planner_calls_object": object_table.planner_calls,
            },
            "solve": {
                "kernel": dict(kernel_sol.perf.to_dict(),
                               wall_time=kernel_solve_time),
                "object": dict(object_sol.perf.to_dict(),
                               wall_time=object_solve_time),
                "phi_kernel": kernel_sol.objective,
                "phi_object": object_sol.objective,
                "speedup": object_solve_time / kernel_solve_time,
            },
        }

    record = benchmark.pedantic(run, iterations=1, rounds=1)
    text = write_bench(results_dir, 5, record)
    print("\n" + text)

    init = record["candidate_init"]
    # Both engines discover the identical candidate set and account the
    # identical logical planner calls...
    assert init["pairs_kernel"] == init["pairs_object"]
    assert init["planner_calls_kernel"] == init["planner_calls_object"]
    # ...but the packed sweep does it at a multiple of the object path.
    assert init["speedup"] >= MIN_SWEEP_SPEEDUP

    solve = record["solve"]
    # End to end, kernels change the wall clock, never the solution.
    assert solve["phi_kernel"] == solve["phi_object"]
    assert solve["kernel"]["planner_calls"] == \
        solve["object"]["planner_calls"]
    assert solve["kernel"]["init_planner_calls"] == \
        solve["object"]["init_planner_calls"]
