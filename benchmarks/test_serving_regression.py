"""Serving-throughput regression bench for PR 7 (online solver service).

Pins the win of the serving stack at paper scale (``delivery`` at the
paper's task density, the paper's d_model=128 / 8-head / 3-layer
TASNet): 32 concurrent greedy requests round-robin over 8 distinct
instances, answered two ways with the *same* network weights:

- ``sequential`` — the pre-serving story: one cold
  ``SMORESolver.solve`` per request on the reference backend (fresh
  env, uncached planner: every request re-pays candidate init);
- ``service`` — the micro-batched path: requests coalesced through
  :class:`SolverService` onto a :class:`WarmEngine` holding the fused
  backend, a memoising planner, resident TASNet statics, and
  per-instance candidate snapshots.  The round-robin workload repeats
  each instance 4x, so greedy dedup collapses repeats onto one decode
  slot per batch — the artifact records both the request throughput and
  how many decodes actually ran.

The headline ratio ``sequential_s / service_s`` must stay at least
``MIN_SERVE_SPEEDUP``; every service answer must be bit-identical to
its sequential counterpart (routes, incentives, objective) — batching
and residency change the wall clock, never the solution.  Latency
percentiles (p50/p99) and sustained req/s come from the service's
:mod:`repro.obs`-mirrored histograms and land in
``results/BENCH_PR7.json`` (a CI artifact), so a regression shows up
as a diff; the assertions pin the ratio and the parity (absolute wall
time is hardware-dependent).
"""

import time

import numpy as np

from repro import nn, obs
from repro.datasets import InstanceOptions, generate_instances
from repro.serve import ServeConfig, SolveRequest, WarmEngine, drive_requests
from repro.smore import SMORESolver, TASNet, TASNetConfig, TASNetPolicy
from repro.tsptw import CachedPlanner, InsertionSolver

from .conftest import write_bench

REQUESTS = 32
POOL = 8                      # distinct instances; 4 requests each
MIN_SERVE_SPEEDUP = 3.0

NET = TASNetConfig(d_model=128, num_heads=8, num_layers=3, conv_channels=8)


def _instances():
    options = InstanceOptions(task_density=0.15)
    return generate_instances("delivery", POOL, seed=100, options=options)


def _routes(solution):
    return sorted((wid, tuple(t.task_id for t in route.tasks))
                  for wid, route in solution.routes.items())


def test_serving_throughput_regression(benchmark, results_dir):
    def run():
        instances = _instances()
        grid = instances[0].coverage.grid
        net = TASNet(NET, grid_nx=grid.nx, grid_ny=grid.ny,
                     rng=np.random.default_rng(0))
        policy = TASNetPolicy(net)
        schedule = [instances[i % POOL] for i in range(REQUESTS)]

        # -- sequential per-request baseline (cold everything) ---------- #
        baseline_solver = SMORESolver(InsertionSolver(), policy)
        with nn.use_backend("reference"):
            start = time.perf_counter()
            baseline = [baseline_solver.solve(inst) for inst in schedule]
            sequential_s = time.perf_counter() - start

        # -- micro-batched service on the warm engine ------------------- #
        with nn.use_backend("fused"):
            engine = WarmEngine(SMORESolver(CachedPlanner(InsertionSolver()),
                                            policy))
        requests = [SolveRequest(instance=inst) for inst in schedule]
        with obs.tracing(results_dir / "serve_bench_trace.jsonl") as tracer:
            start = time.perf_counter()
            result = drive_requests(
                engine, requests,
                config=ServeConfig(max_batch_size=REQUESTS,
                                   max_wait_us=50_000.0,
                                   max_queue_depth=REQUESTS))
            service_s = time.perf_counter() - start

        mismatches = sum(
            1 for want, got in zip(baseline, result.outcomes)
            if isinstance(got, Exception)
            or _routes(want) != _routes(got)
            or want.incentives != got.incentives
            or want.objective != got.objective)

        stats = result.stats
        return {
            "scale": {"mode": "delivery", "requests": REQUESTS,
                      "instance_pool": POOL,
                      "workers": instances[0].num_workers,
                      "sensing_tasks": instances[0].num_sensing_tasks,
                      "d_model": NET.d_model, "num_heads": NET.num_heads,
                      "num_layers": NET.num_layers},
            "sequential": {"seconds": sequential_s,
                           "req_per_s": REQUESTS / sequential_s,
                           "backend": "reference"},
            "service": {"seconds": service_s,
                        "req_per_s": REQUESTS / service_s,
                        "sustained_req_per_s": stats["sustained_req_per_s"],
                        "backend": stats["engine"]["backend"],
                        "batch_size": stats["batch_size"],
                        "latency_ms": stats["latency_ms"],
                        "queue_depth_peak": stats["queue_depth_peak"],
                        "dedup_hits": stats["dedup_hits"],
                        "decodes": REQUESTS - stats["dedup_hits"],
                        "engine": stats["engine"]},
            "speedup": {"service_vs_sequential": sequential_s / service_s},
            "parity": {"checked": REQUESTS,
                       "identical": REQUESTS - mismatches,
                       "mismatches": mismatches},
            "tracer_saw_serving_metrics": bool(
                tracer.metrics.histogram_summary(
                    "serve.latency_ms")["count"]),
        }

    record = benchmark.pedantic(run, iterations=1, rounds=1)
    text = write_bench(results_dir, 7, record)
    print("\n" + text)

    # Bit-parity: batching and residency must not change any answer.
    assert record["parity"]["mismatches"] == 0, \
        f"{record['parity']['mismatches']} service answers diverged"
    # The serving stack must beat sequential per-request solving 3x.
    speedup = record["speedup"]["service_vs_sequential"]
    assert speedup >= MIN_SERVE_SPEEDUP, (
        f"service speedup {speedup:.2f}x under the "
        f"{MIN_SERVE_SPEEDUP:.1f}x floor")
    # Percentiles were actually published (non-empty histograms).
    latency = record["service"]["latency_ms"]
    assert latency["count"] == REQUESTS
    assert latency["p50"] <= latency["p99"]
    assert record["service"]["batch_size"]["max"] > 1
    assert record["tracer_saw_serving_metrics"]
