"""Design ablation (beyond the paper): TSPTW backend choice.

SMORE's candidate initialisation calls its route planner |W| x |S| times;
the paper uses a pre-trained RL solver, this repo defaults to the
insertion heuristic.  This bench compares the backends on the same
instances: solution quality (coverage) and planner speed, plus the exact
DP's optimality gap measurement for the heuristic.
"""

import numpy as np
import pytest

from repro.datasets import generate_instances
from repro.smore import RatioSelectionRule, SMORESolver
from repro.tsptw import (
    ExactDPSolver,
    GPNSolver,
    InsertionSolver,
    make_default_gpn,
)

from .conftest import write_artifact


def test_backend_quality(benchmark, runner, results_dir):
    # One instance: the GPN decodes every task per planner call, which is
    # the expensive path this ablation is measuring.
    instances = runner.test_instances("delivery")[:1]
    spec = runner.profile

    region = instances[0].coverage.grid.region
    gpn = GPNSolver(make_default_gpn(region, 240.0, d_model=16, seed=0),
                    repair=True)
    backends = {
        "insertion": InsertionSolver(),
        "gpn+repair": gpn,
    }

    def run():
        scores = {}
        for name, planner in backends.items():
            solver = SMORESolver(planner, RatioSelectionRule(),
                                 name=f"SMORE[{name}]")
            solutions = [solver.solve(inst) for inst in instances]
            scores[name] = {
                "objective": float(np.mean([s.objective for s in solutions])),
                "time": float(np.mean([s.wall_time for s in solutions])),
            }
        return scores

    scores = benchmark.pedantic(run, iterations=1, rounds=1)
    lines = ["Ablation — TSPTW backend inside SMORE", "=" * 44]
    for name, row in scores.items():
        lines.append(f"  {name:<12} phi={row['objective']:.3f} "
                     f"time={row['time']:.2f}s")
    text = "\n".join(lines)
    write_artifact(results_dir, "ablation_tsptw_backend.txt", text)
    print("\n" + text)

    for name, row in scores.items():
        assert row["objective"] > 0, name


def test_insertion_optimality_gap(benchmark, results_dir):
    """Measure the insertion heuristic's rtt gap to the exact DP."""
    from repro.datasets import InstanceOptions

    instances = generate_instances(
        "delivery", 3, seed=7, options=InstanceOptions(task_density=0.02))
    exact = ExactDPSolver()
    insertion = InsertionSolver()

    def run():
        gaps = []
        for instance in instances:
            for worker in instance.workers:
                sensing = list(instance.sensing_tasks[:2])
                if worker.num_travel_tasks + len(sensing) > exact.max_tasks:
                    continue
                opt = exact.plan(worker, sensing)
                heur = insertion.plan(worker, sensing)
                if opt.feasible and heur.feasible:
                    gaps.append(heur.route_travel_time
                                / opt.route_travel_time - 1.0)
        return gaps

    gaps = benchmark.pedantic(run, iterations=1, rounds=1)
    assert gaps, "no feasible comparisons collected"
    mean_gap = float(np.mean(gaps))
    text = (f"Insertion heuristic optimality gap over {len(gaps)} plans: "
            f"mean={mean_gap:.4%} max={max(gaps):.4%}")
    write_artifact(results_dir, "ablation_insertion_gap.txt", text)
    print("\n" + text)
    assert mean_gap < 0.10  # within 10% of optimal on average
