"""Perf regression bench for PR 8 (dynamic candidate-table repair).

Pins the incremental repair path's win over the per-epoch rebuild at
paper scale (delivery at ``task_density=0.15``: S=144 sensing tasks,
W=7 workers), and its exactness:

- a full greedy dynamic episode over a streamed Poisson schedule is
  bit-identical — objective, selected / rejected sets, event count,
  final routes — with ``repair=True`` and ``repair=False``;
- per event epoch, incremental repair is at least
  ``MIN_REPAIR_SPEEDUP``x faster than rebuilding the table from
  scratch, and issues strictly fewer planner calls.

Timings land in ``results/BENCH_PR8.json`` (a CI artifact), so a
regression shows up as a diff; the assertion pins the speedup ratio
(absolute wall time is hardware-dependent).
"""

import time

import numpy as np

from repro.datasets import InstanceOptions, generate_instances, poisson_arrivals
from repro.smore import DynamicSelectionEnv, GreedySelectionRule, \
    run_dynamic_episode
from repro.tsptw import InsertionSolver

from .conftest import write_bench

BENCH_ROUNDS = 3
MIN_REPAIR_SPEEDUP = 3.0


def _episode(instance, schedule, repair):
    """One greedy dynamic episode; returns (state, env, advance_seconds)."""
    planner = InsertionSolver(speed=instance.speed, use_kernels=True)
    env = DynamicSelectionEnv(instance, planner, schedule, repair=repair)
    state, _ = run_dynamic_episode(env, GreedySelectionRule())
    return state, env


def _routes(state):
    return sorted((wid, tuple(t.task_id for t in route.tasks))
                  for wid, route in state.assignments.routes().items())


def test_dynamic_repair_regression(benchmark, results_dir):
    def run():
        options = InstanceOptions(task_density=0.15, num_workers=7)
        instance = generate_instances("delivery", 1, seed=100,
                                      options=options)[0]
        schedule = poisson_arrivals(instance, np.random.default_rng(8),
                                    initial_fraction=0.3)

        # Alternate the modes and keep each one's fastest round: the
        # minimum is the scheduler-noise-free estimate.  ``repair_time``
        # accumulates exactly the advance() epochs — selection steps are
        # identical in both modes and excluded from the ratio.
        repair_event = rebuild_event = float("inf")
        for _ in range(BENCH_ROUNDS):
            repair_state, repair_env = _episode(instance, schedule, True)
            repair_event = min(
                repair_event, repair_env.repair_time / repair_state.events)
            rebuild_state, rebuild_env = _episode(instance, schedule, False)
            rebuild_event = min(
                rebuild_event, rebuild_env.repair_time / rebuild_state.events)

        return {
            "instance": {"W": instance.num_workers,
                         "S": instance.num_sensing_tasks,
                         "initial_tasks": len(schedule.initial),
                         "streamed_tasks": len(schedule.streamed)},
            "episode": {
                "events": repair_state.events,
                "selected": len(repair_state.selected),
                "rejected": len(repair_state.rejected),
                "arrived": repair_state.arrived,
                "phi_repair": repair_state.phi(),
                "phi_rebuild": rebuild_state.phi(),
                "selected_repair": sorted(
                    t.task_id for t in repair_state.selected),
                "selected_rebuild": sorted(
                    t.task_id for t in rebuild_state.selected),
                "routes_identical": (_routes(repair_state)
                                     == _routes(rebuild_state)),
            },
            "per_event": {
                "repair_seconds": repair_event,
                "rebuild_seconds": rebuild_event,
                "speedup": rebuild_event / repair_event,
                "planner_calls_repair": repair_env.perf.planner_calls,
                "planner_calls_rebuild": rebuild_env.perf.planner_calls,
            },
        }

    record = benchmark.pedantic(run, iterations=1, rounds=1)
    text = write_bench(results_dir, 8, record)
    print("\n" + text)

    scale = record["instance"]
    assert scale["W"] == 7
    assert scale["S"] == 144

    episode = record["episode"]
    # Repair changes the wall clock, never the episode: same objective,
    # same selections, same rejections, same final routes.
    assert episode["phi_repair"] == episode["phi_rebuild"]
    assert episode["selected_repair"] == episode["selected_rebuild"]
    assert episode["routes_identical"]
    assert episode["selected"] + episode["rejected"] == episode["arrived"]
    assert episode["events"] > 0

    per_event = record["per_event"]
    assert per_event["speedup"] >= MIN_REPAIR_SPEEDUP
    assert per_event["planner_calls_repair"] < \
        per_event["planner_calls_rebuild"]
