"""City-scale sharding regression (ISSUE 10).

Pins the divide-and-conquer contract on a mid-size city instance where
the unsharded solve is still feasible:

* P=1 through ``solve_sharded`` is bit-identical to ``SMORESolver.solve``;
* P=4 on the persistent pool is >=3x faster than P=1;
* the coverage gap vs the unsharded solve stays <=2%.

The default sweep keeps CI fast (2k tasks / 200 workers).  Set
``REPRO_BENCH_SHARD_FULL=1`` to also re-measure the 10k-task / 1k-worker
curve (takes roughly an hour at P=1 on one core); without the flag the
previously committed city-scale section of ``BENCH_PR10.json`` is
carried over so the pinned 10k numbers survive re-runs of the small
sweep.
"""

import json
import os
import time

from repro.datasets.synthetic import make_city_instance
from repro.parallel import PersistentPool
from repro.shard import solve_sharded
from repro.smore.solver import GreedySelectionRule, SMORESolver
from repro.tsptw.insertion import InsertionSolver

from .conftest import write_artifact, write_bench

MID_SPEC = dict(num_tasks=2_000, num_workers=200, budget=600.0, seed=1)
CITY_SPEC = dict(num_tasks=10_000, num_workers=1_000, budget=2_000.0, seed=0)
SHARD_COUNTS = (1, 2, 4)

SPEEDUP_FLOOR = 3.0   # P=4 vs P=1, both through the sharded path
GAP_CEILING = 0.02    # coverage loss vs the unsharded solve


def _solver(instance):
    return SMORESolver(InsertionSolver(speed=instance.speed),
                       GreedySelectionRule())


def _sweep(spec: dict, pool: PersistentPool) -> list[dict]:
    instance = make_city_instance(**spec)
    solver = _solver(instance)
    rows = []
    for num_shards in SHARD_COUNTS:
        start = time.perf_counter()
        solution = solve_sharded(solver, instance, num_shards, pool=pool)
        wall = time.perf_counter() - start
        report = solution.shard_report
        rows.append({
            "shards": num_shards,
            "wall_time": wall,
            "phi": solution.objective,
            "completed": solution.num_completed,
            "spent": solution.total_incentive,
            "used_pool": report.used_pool,
            "boundary_tasks": report.boundary_tasks,
            "repair_added": report.repair_added,
            "wall_solve": report.wall_solve,
            "wall_repair": report.wall_repair,
        })
    base = rows[0]
    for row in rows:
        row["speedup"] = base["wall_time"] / max(row["wall_time"], 1e-9)
        row["phi_gap"] = (base["phi"] - row["phi"]) / max(base["phi"], 1e-12)
    return rows


def _identity_check() -> bool:
    instance = make_city_instance(num_tasks=400, num_workers=40,
                                  budget=150.0, seed=9)
    solver = _solver(instance)
    unsharded = solver.solve(instance)
    sharded = solve_sharded(solver, instance, 1)
    same_routes = {
        wid: tuple(t.task_id for t in route.tasks)
        for wid, route in sharded.routes.items()
    } == {
        wid: tuple(t.task_id for t in route.tasks)
        for wid, route in unsharded.routes.items()
    }
    return (same_routes and sharded.incentives == unsharded.incentives
            and sharded.objective == unsharded.objective)


def _carry_city_rows(results_dir) -> list[dict]:
    committed = results_dir / "BENCH_PR10.json"
    if committed.exists():
        return json.loads(committed.read_text()).get("city", {}) \
            .get("rows", [])
    return []


def test_shard_scaling_speedup_and_gap(benchmark, results_dir):
    full = os.environ.get("REPRO_BENCH_SHARD_FULL") == "1"

    def run():
        with PersistentPool(workers=2) as pool:
            mid_rows = _sweep(MID_SPEC, pool)
            city_rows = _sweep(CITY_SPEC, pool) if full else []
        return {
            "p1_bit_identical": _identity_check(),
            "mid": {"spec": MID_SPEC, "rows": mid_rows},
            "city": {
                "spec": CITY_SPEC,
                "rows": city_rows or _carry_city_rows(results_dir),
                "measured_this_run": bool(city_rows),
            },
        }

    record = benchmark.pedantic(run, iterations=1, rounds=1)

    lines = ["Shard scaling — wall time and coverage vs shard count",
             "=" * 64]
    for label in ("mid", "city"):
        rows = record[label]["rows"]
        if not rows:
            continue
        spec = record[label]["spec"]
        lines.append(f"\n[{label}] |S|={spec['num_tasks']} "
                     f"|W|={spec['num_workers']} B={spec['budget']:g}")
        for r in rows:
            lines.append(
                f"  P={r['shards']}: wall={r['wall_time']:.2f}s "
                f"speedup={r['speedup']:.2f}x phi={r['phi']:.3f} "
                f"gap={r['phi_gap']:+.2%} boundary={r['boundary_tasks']} "
                f"repair+={r['repair_added']}")
    lines.append(f"\nP=1 sharded output bit-identical: "
                 f"{record['p1_bit_identical']}")
    text = "\n".join(lines)
    write_artifact(results_dir, "shard_scaling.txt", text)
    write_bench(results_dir, 10, record)
    print("\n" + text)

    assert record["p1_bit_identical"]
    mid = {r["shards"]: r for r in record["mid"]["rows"]}
    assert mid[4]["speedup"] >= SPEEDUP_FLOOR
    assert mid[2]["phi_gap"] <= GAP_CEILING
    assert mid[4]["phi_gap"] <= GAP_CEILING
    city = {r["shards"]: r for r in record["city"]["rows"]}
    if city:
        assert city[4]["speedup"] >= SPEEDUP_FLOOR
