"""Training-throughput regression bench for PR 6 (fused backend +
cross-instance batched decoding).

Pins the win of the two PR-6 perf layers over the reference path at
paper scale (``delivery`` instances at the paper's task density, the
paper's d_model=128 / 8-head / 3-layer TASNet, 32 REINFORCE rollouts
per instance):

- ``reference_serial`` — the reference autograd backend with the
  per-rollout (serial) decode loop: the seed-equivalent baseline;
- ``reference_cross`` — the reference backend with cross-instance
  batched decoding: isolates the batching contribution;
- ``fused_cross`` — the fused graph executor plus cross-instance
  batching: the shipped configuration.

A full REINFORCE iteration (sampled rollouts + greedy baselines +
backward + update) is timed per configuration after one warm-up
iteration; the headline ratio ``reference_serial / fused_cross`` must
stay at least ``MIN_TRAIN_SPEEDUP``.  The serial baseline gets a single
timed round (it costs tens of seconds); the cheap configurations keep
the fastest of ``BENCH_ROUNDS`` rounds.

The three configurations must also agree bitwise on the first
iteration's mean reward: same seeds, same action streams — decode mode
and backend change the wall clock, never the rollouts (the
serial-vs-batched and cross-backend parity suites pin the same
invariant at test scale; this repeats it at paper scale).

Timings land in ``results/BENCH_PR6.json`` (a CI artifact), so a
regression shows up as a diff; the assertion pins the speedup ratio
(absolute wall time is hardware-dependent).
"""

import time

import numpy as np

from repro import nn
from repro.datasets import InstanceOptions, generate_instances
from repro.smore import (TASNet, TASNetConfig, TASNetPolicy, TASNetTrainer,
                         TrainingConfig)
from repro.tsptw import InsertionSolver

from .conftest import write_bench

BATCH_SIZE = 4
ROLLOUTS = 32
BENCH_ROUNDS = 2
MIN_TRAIN_SPEEDUP = 5.0

NET = TASNetConfig(d_model=128, num_heads=8, num_layers=3, conv_channels=8)


def _instances():
    options = InstanceOptions(task_density=0.15)
    return generate_instances("delivery", BATCH_SIZE, seed=100,
                              options=options)


def _run_config(instances, backend, cross, serial, rounds):
    """Warm up, then time ``rounds`` REINFORCE iterations; keep the min."""
    grid = instances[0].coverage.grid
    net = TASNet(NET, grid_nx=grid.nx, grid_ny=grid.ny,
                 rng=np.random.default_rng(0))
    policy = TASNetPolicy(net)
    if serial:
        policy.act_batch = None  # force the per-rollout decode loop
    config = TrainingConfig(batch_size=BATCH_SIZE,
                            rollouts_per_instance=ROLLOUTS,
                            cross_instance_batch=cross, seed=3)
    trainer = TASNetTrainer(policy, InsertionSolver(), config)
    best = float("inf")
    with nn.use_backend(backend):
        first_reward = trainer.train_iteration(instances)
        for _ in range(rounds):
            start = time.perf_counter()
            trainer.train_iteration(instances)
            best = min(best, time.perf_counter() - start)
    return {"seconds": best, "rounds": rounds, "backend": backend,
            "cross_instance_batch": cross, "serial_decode": serial,
            "first_reward": first_reward}


def test_train_throughput_regression(benchmark, results_dir):
    def run():
        instances = _instances()
        configs = {
            "reference_serial": _run_config(instances, "reference",
                                            cross=False, serial=True,
                                            rounds=1),
            "reference_cross": _run_config(instances, "reference",
                                           cross=True, serial=False,
                                           rounds=BENCH_ROUNDS),
            "fused_cross": _run_config(instances, "fused", cross=True,
                                       serial=False, rounds=BENCH_ROUNDS),
        }
        serial_s = configs["reference_serial"]["seconds"]
        ref_cross_s = configs["reference_cross"]["seconds"]
        fused_s = configs["fused_cross"]["seconds"]
        return {
            "scale": {"mode": "delivery", "batch_size": BATCH_SIZE,
                      "rollouts_per_instance": ROLLOUTS,
                      "workers": instances[0].num_workers,
                      "sensing_tasks": instances[0].num_sensing_tasks,
                      "d_model": NET.d_model, "num_heads": NET.num_heads,
                      "num_layers": NET.num_layers},
            "configs": configs,
            "speedup": {
                "fused_cross_vs_reference_serial": serial_s / fused_s,
                "batching_vs_reference_serial": serial_s / ref_cross_s,
                "fused_vs_reference_cross": ref_cross_s / fused_s,
            },
        }

    record = benchmark.pedantic(run, iterations=1, rounds=1)
    text = write_bench(results_dir, 6, record)
    print("\n" + text)

    rewards = {name: c["first_reward"]
               for name, c in record["configs"].items()}
    # Decode mode and backend never change the action streams: all three
    # configurations replay the same rollouts from the same seeds.
    assert len(set(rewards.values())) == 1, rewards
    # The shipped configuration trains at a multiple of the seed path.
    assert record["speedup"]["fused_cross_vs_reference_serial"] >= \
        MIN_TRAIN_SPEEDUP
