"""Figure 6 — case study: original routes vs SMORE re-planning.

Renders the four text heatmaps and asserts the paper's observation: the
no-re-planning scenario leaves data skewed over the region while SMORE
covers it much better (higher coverage, more cells touched).
"""

import numpy as np

from repro.experiments import render_case_study, run_case_study
from repro.experiments.pretrained import get_trained_policy

from .conftest import write_artifact


import pytest


@pytest.mark.parametrize("dataset", ("delivery", "tourism"))
def test_figure6(benchmark, runner, results_dir, dataset):
    instance = runner.test_instances(dataset)[0]
    policy = get_trained_policy(dataset, spec=runner.profile.pretrain,
                                cache_dir=runner.cache_dir)

    def run():
        return run_case_study(instance, policy)

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    text = render_case_study(result)
    write_artifact(results_dir, f"figure6_{dataset}.txt", text)
    print("\n" + text)

    # Vector-graphic versions of Figures 6a-6d.
    from repro.experiments.svg import render_solution_svg

    write_artifact(results_dir, f"figure6_{dataset}_baseline.svg",
                   render_solution_svg(result.baseline))
    write_artifact(results_dir, f"figure6_{dataset}_smore.svg",
                   render_solution_svg(result.smore))

    assert result.smore_phi > result.baseline_phi
    maps = result.heatmaps()
    smore_cells = int((maps["smore_completion"] > 0).sum())
    baseline_cells = int((maps["baseline_completion"] > 0).sum())
    assert smore_cells > baseline_cells  # much wider spatial spread
    assert result.smore.validate() == []
