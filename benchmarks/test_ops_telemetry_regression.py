"""Telemetry regression bench for PR 9 (operational observability).

Two pins at paper scale (``delivery`` at the paper's task density, the
paper's d_model=128 / 8-head / 3-layer TASNet; 32 requests round-robin
over an 8-instance pool, every 4th request sampled with a pinned seed):

1. **Replay identity** — the flight-recorder journal written by the
   live micro-batched service re-executes against a freshly rebuilt
   engine with every solution digest bit-identical (32/32).  Batching,
   dedup, residency, and telemetry change the wall clock, never the
   answers — so a sequential replay of the journal is a faithful
   re-run of whatever coalescing happened live.
2. **Overhead budget** — the full telemetry stack (per-request stage
   traces + rolling-window SLO tracking + journal writes) costs < 2%
   wall time over the telemetry-disabled service, and the disabled
   path itself does no attribution work (no stage histograms, no trace
   ring).  Each mode takes its best-of-``ROUNDS`` wall time so the
   ratio compares steady-state runs, not scheduler noise.

The record lands in ``results/BENCH_PR9.json`` (a CI artifact); the
assertions pin replay identity and the overhead ceiling (absolute wall
time is hardware-dependent).
"""

import time

import numpy as np

from repro.datasets import InstanceOptions, generate_instances
from repro.obs.recorder import FlightRecorder, read_journal, replay_journal
from repro.obs.slo import SloConfig, SloTracker
from repro.serve import ServeConfig, SolveRequest, WarmEngine, drive_requests
from repro.smore import SMORESolver, TASNet, TASNetConfig, TASNetPolicy
from repro.tsptw import CachedPlanner, InsertionSolver

from .conftest import write_bench

REQUESTS = 32
POOL = 8
ROUNDS = 3                    # best-of per telemetry mode
MAX_OVERHEAD_PCT = 2.0

NET = TASNetConfig(d_model=128, num_heads=8, num_layers=3, conv_channels=8)


def _instances():
    options = InstanceOptions(task_density=0.15)
    return generate_instances("delivery", POOL, seed=100, options=options)


def _requests(instances):
    """Round-robin pool; every 4th request sampled with a pinned seed."""
    out = []
    for i in range(REQUESTS):
        inst = instances[i % POOL]
        if i % 4 == 3:
            out.append(SolveRequest(instance=inst, greedy=False,
                                    seed=900 + i, num_samples=2))
        else:
            out.append(SolveRequest(instance=inst))
    return out


def _engine(instances, policy):
    return WarmEngine(SMORESolver(CachedPlanner(InsertionSolver()), policy))


def _config(traces):
    return ServeConfig(max_batch_size=REQUESTS, max_wait_us=50_000.0,
                       max_queue_depth=REQUESTS, request_traces=traces)


def test_ops_telemetry_regression(benchmark, results_dir, tmp_path):
    def run():
        instances = _instances()
        grid = instances[0].coverage.grid
        net = TASNet(NET, grid_nx=grid.nx, grid_ny=grid.ny,
                     rng=np.random.default_rng(0))
        policy = TASNetPolicy(net)
        requests = _requests(instances)

        # -- replay identity: journal the live run, re-execute it ------- #
        journal_path = tmp_path / "bench_journal.jsonl"
        recorder = FlightRecorder(journal_path,
                                  workload={"mode": "delivery",
                                            "requests": REQUESTS})
        recorder.register_instances(instances)
        live = drive_requests(_engine(instances, policy), requests,
                              config=_config(traces=True),
                              slo=SloTracker(SloConfig()),
                              recorder=recorder)
        assert not any(isinstance(o, Exception) for o in live.outcomes)
        journal = read_journal(journal_path)
        replay = replay_journal(journal, _engine(instances, policy),
                                instances)

        # -- overhead: best-of-ROUNDS per telemetry mode ---------------- #
        def timed(make_kwargs):
            best = float("inf")
            for _ in range(ROUNDS):   # fresh engine/recorder per round:
                engine = _engine(instances, policy)   # stop() closes them
                kwargs = make_kwargs()
                start = time.perf_counter()
                result = drive_requests(engine, requests, **kwargs)
                best = min(best, time.perf_counter() - start)
                assert not any(isinstance(o, Exception)
                               for o in result.outcomes)
            return best, result

        def full_kwargs():
            recorder = FlightRecorder(tmp_path / "overhead_journal.jsonl")
            recorder.register_instances(instances)
            return {"config": _config(traces=True),
                    "slo": SloTracker(SloConfig()), "recorder": recorder}

        disabled_s, disabled = timed(
            lambda: {"config": _config(traces=False)})
        full_s, full = timed(full_kwargs)

        overhead_pct = (full_s - disabled_s) / disabled_s * 100.0
        return {
            "scale": {"mode": "delivery", "requests": REQUESTS,
                      "instance_pool": POOL,
                      "sampled_requests": REQUESTS // 4,
                      "workers": instances[0].num_workers,
                      "sensing_tasks": instances[0].num_sensing_tasks,
                      "d_model": NET.d_model, "num_heads": NET.num_heads,
                      "num_layers": NET.num_layers},
            "replay": {"journal_complete": journal.complete,
                       "requests": len(journal.requests),
                       "replayed": replay.replayed,
                       "matched": replay.matched,
                       "mismatches": len(replay.mismatches),
                       "skipped": replay.skipped},
            "overhead": {"disabled_s": disabled_s, "full_s": full_s,
                         "overhead_pct": overhead_pct,
                         "rounds": ROUNDS,
                         "budget_pct": MAX_OVERHEAD_PCT},
            "disabled_path": {
                "stages_in_stats": "stages" in disabled.stats,
                "traces_retained": len(disabled.traces)},
            "full_path": {
                "traces_retained": len(full.traces),
                "stage_counts": {
                    name: full.stats["stages"][name]["count"]
                    for name in ("admission_wait_ms", "coalesce_wait_ms",
                                 "execute_ms")},
                "slo_requests": full.stats["slo"]["requests"]},
        }

    record = benchmark.pedantic(run, iterations=1, rounds=1)
    text = write_bench(results_dir, 9, record)
    print("\n" + text)

    # Every journaled request replays to a bit-identical digest.
    replay = record["replay"]
    assert replay["journal_complete"]
    assert replay["requests"] == REQUESTS
    assert replay["replayed"] == replay["matched"] == REQUESTS, \
        f"{replay['mismatches']} replay digests diverged"
    assert replay["skipped"] == 0
    # Full telemetry stays under the overhead budget.
    overhead = record["overhead"]["overhead_pct"]
    assert overhead < MAX_OVERHEAD_PCT, (
        f"full telemetry overhead {overhead:.2f}% over the "
        f"{MAX_OVERHEAD_PCT:.1f}% budget")
    # The disabled path really is disabled: no attribution machinery ran.
    assert not record["disabled_path"]["stages_in_stats"]
    assert record["disabled_path"]["traces_retained"] == 0
    # And the full path attributed every request.
    assert record["full_path"]["traces_retained"] == REQUESTS
    assert record["full_path"]["stage_counts"]["admission_wait_ms"] == \
        REQUESTS
    assert record["full_path"]["slo_requests"] == REQUESTS
