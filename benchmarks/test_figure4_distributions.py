"""Figure 4 — dataset distributions (travel tasks per trip, workers per
instance) for all three dataset families."""

import numpy as np

from repro.datasets import generate_instances, summarize_dataset

from .conftest import write_artifact

DATASETS = ("delivery", "tourism", "lade")


def test_figure4(benchmark, runner, results_dir):
    def run():
        summaries = {}
        for dataset in DATASETS:
            instances = generate_instances(
                dataset, 30, seed=runner.seed,
                options=runner.profile.options())
            summaries[dataset] = summarize_dataset(instances)
        return summaries

    summaries = benchmark.pedantic(run, iterations=1, rounds=1)

    lines = ["Figure 4 — Data Distributions", "=" * 40]
    for dataset, summary in summaries.items():
        lines.append(f"\n[{dataset}]")
        for panel, dist in summary.items():
            lines.append(f"  {panel}: mean={dist.mean:.2f} "
                         f"std={dist.std:.2f} min={dist.min:g} "
                         f"max={dist.max:g}")
            for label, count in dist.rows():
                lines.append(f"    {label:<16} {'#' * int(count)}")
    text = "\n".join(lines)
    write_artifact(results_dir, "figure4.txt", text)
    print("\n" + text)

    for dataset, summary in summaries.items():
        travel = summary["travel_tasks"]
        workers = summary["workers"]
        # Figure 4 shapes: right-skewed travel-task counts (mean below the
        # midpoint of the range) and bounded worker counts per instance.
        assert travel.min >= 0
        assert travel.mean < (travel.min + travel.max) / 2 + 1.0, dataset
        assert workers.min >= 1, dataset
        # Tourists make fewer stops than couriers.
    assert (summaries["tourism"]["travel_tasks"].mean
            <= summaries["delivery"]["travel_tasks"].mean + 1.0)
