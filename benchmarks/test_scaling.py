"""Empirical check of the complexity analysis (paper Section III-D).

The paper derives: candidate initialisation costs |W| x |S| planner calls;
each selection iteration re-plans only the chosen worker's candidates
(O(|S|) calls), while the greedy baselines re-scan all |W| x |S|
insertions per step.  This bench counts actual planner calls and wall
time as |S| grows, verifying both the exact call counts and the resulting
runtime separation between SMORE and the greedy baselines.
"""

import time

import numpy as np

from repro.baselines import TVPGSolver
from repro.datasets import InstanceOptions, generate_instances
from repro.smore import RatioSelectionRule, SelectionEnv, SMORESolver
from repro.tsptw import InsertionSolver

from .conftest import write_artifact

DENSITIES = (0.08, 0.15, 0.3)


def test_planner_call_scaling(benchmark, results_dir):
    def run():
        rows = []
        for density in DENSITIES:
            options = InstanceOptions(task_density=density)
            instance = generate_instances("delivery", 1, seed=100,
                                          options=options)[0]
            env = SelectionEnv(instance, InsertionSolver())
            state = env.reset()
            init_calls = state.candidates.planner_calls
            # One selection step: only the chosen worker's row refreshes.
            worker_id = state.feasible_worker_ids()[0]
            task_id = sorted(state.candidates.worker_candidates(worker_id))[0]
            env.step(worker_id, task_id)
            step_calls = state.candidates.planner_calls - init_calls

            start = time.perf_counter()
            smore = SMORESolver(InsertionSolver(),
                                RatioSelectionRule()).solve(instance)
            smore_time = time.perf_counter() - start
            start = time.perf_counter()
            TVPGSolver().solve(instance)
            greedy_time = time.perf_counter() - start

            rows.append({
                "S": instance.num_sensing_tasks,
                "W": instance.num_workers,
                "init_calls": init_calls,
                "step_calls": step_calls,
                "smore_time": smore_time,
                "greedy_time": greedy_time,
            })
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    lines = ["Scaling — planner calls and wall time vs |S| (Section III-D)",
             "=" * 62]
    for r in rows:
        lines.append(
            f"  |S|={r['S']:<4} |W|={r['W']} init_calls={r['init_calls']:<5} "
            f"step_calls={r['step_calls']:<4} "
            f"SMORE={r['smore_time']:.2f}s TVPG={r['greedy_time']:.2f}s "
            f"(x{r['greedy_time'] / max(r['smore_time'], 1e-9):.1f})")
    text = "\n".join(lines)
    write_artifact(results_dir, "scaling.txt", text)
    print("\n" + text)

    for r in rows:
        # Initialisation: exactly |W| x |S| feasibility checks.
        assert r["init_calls"] == r["W"] * r["S"]
        # One iteration: at most |S| re-checks (selected worker only).
        assert r["step_calls"] <= r["S"]
    # The greedy baseline's per-step |W| x |S| scan makes it slower, and
    # increasingly so as |S| grows.
    assert rows[-1]["greedy_time"] > rows[-1]["smore_time"]