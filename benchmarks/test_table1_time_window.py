"""Table I — effect of the sensing-task time window (30 / 60 / 120 min).

Regenerates, per dataset, the Obj./Time rows of the paper's Table I at the
benchmark scale, writes ``results/table1_<dataset>.txt``, and asserts the
paper's coarse shape: SMORE leads the field, RN trails it, and the
RL-based methods run orders of magnitude faster than the meta-heuristics.
"""

import pytest

from repro.experiments import render_grid, table1_time_window

from .conftest import objectives_by_method, write_artifact

DATASETS = ("delivery", "tourism", "lade")


@pytest.mark.parametrize("dataset", DATASETS)
def test_table1(benchmark, runner, results_dir, dataset):
    def run():
        return table1_time_window(runner, datasets=(dataset,))

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    text = render_grid("Table I — Effect of Sensing Task Time Window",
                       results)
    write_artifact(results_dir, f"table1_{dataset}.txt", text)
    print("\n" + text)

    for setting, cell in results[dataset].items():
        objectives = objectives_by_method(cell)
        assert objectives["SMORE"] > objectives["RN"], setting
        # SMORE is at worst a whisker behind the best baseline and usually
        # ahead (the paper reports +5.2% on average).
        best_baseline = max(v for k, v in objectives.items() if k != "SMORE")
        assert objectives["SMORE"] >= 0.93 * best_baseline, setting
