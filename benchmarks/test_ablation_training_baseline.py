"""Training-efficiency ablation: critic vs rollout baseline (Section IV-F).

The paper states it uses "the REINFORCE algorithm with a critic baseline
because we find that using a critic baseline has higher training
efficiency compared to some self-critic methods (e.g., rollout baseline)".
This bench measures that claim directly: identical policies trained for
the same number of REINFORCE iterations under each baseline, compared on
wall-clock per iteration and final greedy coverage.
"""

import time

import numpy as np
import pytest

from repro.datasets import InstanceOptions, generate_instances
from repro.smore import (
    TASNet,
    TASNetConfig,
    TASNetPolicy,
    TASNetTrainer,
    TrainingConfig,
)
from repro.tsptw import InsertionSolver

from .conftest import write_artifact

BASELINES = ("critic", "rollout", "none")


def test_baseline_training_efficiency(benchmark, results_dir):
    options = InstanceOptions(task_density=0.1)
    train = generate_instances("delivery", 6, seed=0, options=options)
    test = generate_instances("delivery", 2, seed=100, options=options)
    planner = InsertionSolver()

    def run():
        rows = {}
        for baseline in BASELINES:
            net = TASNet(
                TASNetConfig(d_model=16, num_heads=2, num_layers=1,
                             conv_channels=2),
                grid_nx=10, grid_ny=12, rng=np.random.default_rng(0))
            policy = TASNetPolicy(net)
            trainer = TASNetTrainer(
                policy, planner,
                TrainingConfig(iterations=8, batch_size=2, lr=1e-3,
                               seed=0, baseline=baseline))
            start = time.perf_counter()
            trainer.train(train)
            elapsed = time.perf_counter() - start
            rows[baseline] = {
                "final_coverage": trainer.evaluate(test),
                "seconds_per_iteration": elapsed / 8,
            }
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    lines = ["Ablation — REINFORCE baseline (critic vs rollout vs none)",
             "=" * 58]
    for baseline, row in rows.items():
        lines.append(f"  {baseline:<8} coverage={row['final_coverage']:.3f} "
                     f"sec/iter={row['seconds_per_iteration']:.2f}")
    text = "\n".join(lines)
    write_artifact(results_dir, "ablation_training_baseline.txt", text)
    print("\n" + text)

    # The rollout baseline pays an extra greedy decode per instance per
    # iteration — the critic must be cheaper per iteration (the paper's
    # "higher training efficiency").
    assert (rows["critic"]["seconds_per_iteration"]
            < rows["rollout"]["seconds_per_iteration"])
    for baseline, row in rows.items():
        assert row["final_coverage"] > 0, baseline
