"""Table III — effect of the weight alpha in the data coverage.

Regenerates the alpha sweep (0.2 / 0.5 / 0.8).  Asserts the paper's
crossover: cost-priority greedy (TCPG) wins over value-priority greedy
(TVPG) when quantity dominates (alpha = 0.2), and the ordering flips when
balance dominates (alpha = 0.8).
"""

import pytest

from repro.experiments import render_grid, table3_alpha

from .conftest import objectives_by_method, write_artifact

DATASETS = ("delivery", "tourism", "lade")


@pytest.mark.parametrize("dataset", DATASETS)
def test_table3(benchmark, runner, results_dir, dataset):
    def run():
        return table3_alpha(runner, datasets=(dataset,))

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    text = render_grid("Table III — Effect of Weight in Data Coverage",
                       results)
    write_artifact(results_dir, f"table3_{dataset}.txt", text)
    print("\n" + text)

    cells = results[dataset]
    for setting, cell in cells.items():
        objectives = objectives_by_method(cell)
        assert objectives["SMORE"] > objectives["RN"], setting


def test_table3_greedy_crossover(benchmark, runner, results_dir):
    """The TVPG/TCPG crossover of the paper, checked on Delivery."""

    def run():
        return table3_alpha(runner, datasets=("delivery",),
                            methods=("TVPG", "TCPG"))

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    cells = results["delivery"]
    low = objectives_by_method(cells["alpha=0.2"])
    high = objectives_by_method(cells["alpha=0.8"])
    assert low["TCPG"] > low["TVPG"]    # quantity regime: cost-greedy wins
    assert high["TVPG"] > high["TCPG"]  # balance regime: value-greedy wins
