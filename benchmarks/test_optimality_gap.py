"""Optimality gap of SMORE and the baselines on exactly solvable instances.

USMDW is NP-hard, so the paper can only compare heuristics against each
other.  At micro scale the branch-and-bound solver delivers true optima;
this bench measures how much coverage each method leaves on the table —
an evaluation the reproduction adds beyond the paper.
"""

import numpy as np

from repro.baselines import ExactUSMDWSolver, RandomSolver, TCPGSolver, TVPGSolver
from repro.smore import GreedySelectionRule, RatioSelectionRule, SMORESolver
from repro.tsptw import InsertionSolver

from .conftest import write_artifact

NUM_INSTANCES = 4


def test_optimality_gap(benchmark, results_dir):
    from tests.baselines.test_exact import tiny_instance

    solvers = {
        "EXACT": ExactUSMDWSolver(time_limit=30.0),
        "SMORE (ratio)": SMORESolver(InsertionSolver(), RatioSelectionRule()),
        "SMORE (gain)": SMORESolver(InsertionSolver(), GreedySelectionRule()),
        "TVPG": TVPGSolver(),
        "TCPG": TCPGSolver(),
        "RN": RandomSolver(seed=1),
    }
    budgets = (100.0, 150.0)  # starved vs adequate regime

    def run():
        tables = {}
        for budget in budgets:
            instances = [tiny_instance(seed=seed, num_tasks=6, num_workers=2,
                                       budget=budget)
                         for seed in range(NUM_INSTANCES)]
            optima = [solvers["EXACT"].solve(inst).objective
                      for inst in instances]
            table = {"EXACT": {"phi": float(np.mean(optima)), "gap": 0.0}}
            for name, solver in solvers.items():
                if name == "EXACT":
                    continue
                values, gaps = [], []
                for instance, optimum in zip(instances, optima):
                    phi = solver.solve(instance).objective
                    values.append(phi)
                    gaps.append(0.0 if optimum <= 0
                                else max(0.0, 1.0 - phi / optimum))
                table[name] = {"phi": float(np.mean(values)),
                               "gap": float(np.mean(gaps))}
            tables[budget] = table
        return tables

    tables = benchmark.pedantic(run, iterations=1, rounds=1)
    lines = [f"Optimality gap on {NUM_INSTANCES} micro instances "
             f"(6 tasks, 2 workers)", "=" * 56]
    for budget, table in tables.items():
        lines.append(f"\n[budget={budget:g}]")
        for name, row in table.items():
            lines.append(f"  {name:<14} phi={row['phi']:.3f} "
                         f"gap={row['gap']:.1%}")
    text = "\n".join(lines)
    write_artifact(results_dir, "optimality_gap.txt", text)
    print("\n" + text)

    for budget, table in tables.items():
        assert table["EXACT"]["phi"] >= table["SMORE (ratio)"]["phi"] - 1e-9
        # On starved instances, iterative one-task-at-a-time selection
        # (every heuristic here) provably loses to joint optimisation —
        # that *is* the NP-hardness story; the gap must stay bounded and
        # the framework must not fall behind random insertion.
        assert table["SMORE (ratio)"]["gap"] <= 0.45, budget
        assert (table["SMORE (ratio)"]["phi"]
                >= table["RN"]["phi"] - 1e-9), budget
    # With adequate budget the SMORE framework reaches the optimum.
    assert tables[150.0]["SMORE (ratio)"]["gap"] <= 0.05
