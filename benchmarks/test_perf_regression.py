"""Perf regression bench: one ``results/BENCH_PR<n>.json`` per PR.

Smoke-scale guardrails for the performance layer.  PR 1 (snapshot reuse,
planner caching, fork-pool parity):

- sample-and-select-best inference pays the O(|W| x |S|) candidate
  initialisation exactly once (snapshot reuse), vs. once per rollout with
  ``reuse_candidates=False``;
- a :class:`~repro.tsptw.CachedPlanner` wrapper reports a non-trivial hit
  rate on the counters the solution carries;
- a parallel (``workers=2``) solve returns the same objective as serial.

PR 2 (batched decode engine): lock-step batched TASNet rollouts deliver
at least 2x the rollout throughput of the per-episode loop at
``num_samples >= 8`` while decoding the identical solution.

PR 3 (observability layer): the ``repro.obs`` instrumentation is free
when tracing is disabled — the estimated cost of the solver's no-op
instrumentation points stays below 2% of a smoke solve — and a traced
solve decodes the identical solution.

Timings and call counts are written to the per-PR artefacts so
regressions show up as a diff; assertions pin call counts and the
batched-over-loop speedup ratio (absolute wall time is
hardware-dependent).
"""

import time

import numpy as np

from repro import obs
from repro.datasets import InstanceOptions, generate_instances
from repro.smore import (RatioSelectionRule, SMORESolver, TASNet,
                         TASNetConfig, TASNetPolicy)
from repro.tsptw import CachedPlanner, InsertionSolver

from .conftest import write_bench

NUM_SAMPLES = 4
NUM_BATCH_SAMPLES = 8
MIN_BATCH_SPEEDUP = 2.0
BENCH_ROUNDS = 3
MAX_DISABLED_OVERHEAD = 0.02
NOOP_REPS = 100_000


def test_perf_regression(benchmark, results_dir):
    def run():
        options = InstanceOptions(task_density=0.15)
        instance = generate_instances("delivery", 1, seed=100,
                                      options=options)[0]
        solver = SMORESolver(InsertionSolver(), RatioSelectionRule())

        start = time.perf_counter()
        reuse = solver.solve(instance, num_samples=NUM_SAMPLES,
                             rng=np.random.default_rng(0))
        reuse_time = time.perf_counter() - start

        start = time.perf_counter()
        fresh = solver.solve(instance, num_samples=NUM_SAMPLES,
                             rng=np.random.default_rng(0),
                             reuse_candidates=False)
        fresh_time = time.perf_counter() - start

        # Same instance solved twice through one memoising wrapper (the
        # experiment-grid scenario): the second solve repeats every
        # planner query, so its counters show the cross-solve hit rate.
        cached_solver = SMORESolver(CachedPlanner(InsertionSolver()),
                                    RatioSelectionRule())
        cached_solver.solve(instance)
        cached = cached_solver.solve(instance)

        parallel = solver.solve(instance, num_samples=NUM_SAMPLES,
                                rng=np.random.default_rng(0), workers=2)

        return {
            "instance": {"W": instance.num_workers,
                         "S": instance.num_sensing_tasks,
                         "num_samples": NUM_SAMPLES},
            "snapshot_reuse": dict(reuse.perf.to_dict(),
                                   wall_time=reuse_time),
            "no_reuse": dict(fresh.perf.to_dict(), wall_time=fresh_time),
            "cached_planner": cached.perf.to_dict(),
            "parallel": {"phi_serial": reuse.objective,
                         "phi_parallel": parallel.objective,
                         "planner_calls": parallel.perf.planner_calls},
        }

    record = benchmark.pedantic(run, iterations=1, rounds=1)
    text = write_bench(results_dir, 1, record)
    print("\n" + text)

    w_times_s = record["instance"]["W"] * record["instance"]["S"]
    # Snapshot reuse: the init sweep runs once, not once per rollout.
    assert record["snapshot_reuse"]["init_planner_calls"] == w_times_s
    assert record["no_reuse"]["init_planner_calls"] == \
        NUM_SAMPLES * w_times_s
    assert record["snapshot_reuse"]["planner_calls"] < \
        record["no_reuse"]["planner_calls"]
    assert record["snapshot_reuse"]["rollouts"] == NUM_SAMPLES
    # The memoising wrapper absorbs the second solve's repeated queries.
    assert record["cached_planner"]["cache_hits"] > 0
    assert record["cached_planner"]["cache_hit_rate"] > 0.3
    # Parallel decoding is result-identical to serial.
    assert record["parallel"]["phi_parallel"] == \
        record["parallel"]["phi_serial"]
    assert record["parallel"]["planner_calls"] == \
        record["snapshot_reuse"]["planner_calls"]


def test_batched_decode_throughput(benchmark, results_dir):
    """PR 2: batched TASNet decoding vs. the per-episode reference loop.

    A warm-up solve through a memoising planner pushes every route query
    into the cache, so the timed solves measure decode cost — the policy
    forwards plus the selection loop — rather than TSPTW planning, which
    is identical in both paths.  The network runs at the paper's scale
    (d_model 128, 8 heads, 3 encoder layers), where per-step policy
    forwards dominate decoding and batching pays off most.
    """

    def run():
        options = InstanceOptions(task_density=0.15)
        instance = generate_instances("delivery", 1, seed=100,
                                      options=options)[0]
        grid = instance.coverage.grid
        net = TASNet(TASNetConfig(d_model=128, num_heads=8, num_layers=3),
                     grid_nx=grid.nx, grid_ny=grid.ny,
                     rng=np.random.default_rng(0))
        solver = SMORESolver(CachedPlanner(InsertionSolver()),
                             TASNetPolicy(net))

        # Same schedule as the timed solves -> the cache absorbs every
        # planner query they will make.
        solver.solve(instance, num_samples=NUM_BATCH_SAMPLES,
                     rng=np.random.default_rng(0), batch_rollouts=False)

        def timed(**kwargs):
            start = time.perf_counter()
            solution = solver.solve(instance,
                                    num_samples=NUM_BATCH_SAMPLES,
                                    rng=np.random.default_rng(0), **kwargs)
            return solution, time.perf_counter() - start

        # Alternate the paths over a few rounds and keep each path's
        # fastest run: the minimum is the scheduler-noise-free estimate.
        loop_time = batched_time = float("inf")
        for _ in range(BENCH_ROUNDS):
            loop, elapsed = timed(batch_rollouts=False)
            loop_time = min(loop_time, elapsed)
            batched, elapsed = timed()
            batched_time = min(batched_time, elapsed)

        return {
            "instance": {"W": instance.num_workers,
                         "S": instance.num_sensing_tasks,
                         "num_samples": NUM_BATCH_SAMPLES},
            "loop": dict(loop.perf.to_dict(), wall_time=loop_time),
            "batched": dict(batched.perf.to_dict(), wall_time=batched_time),
            "phi_loop": loop.objective,
            "phi_batched": batched.objective,
            "rollouts_per_second_loop": NUM_BATCH_SAMPLES / loop_time,
            "rollouts_per_second_batched": NUM_BATCH_SAMPLES / batched_time,
            "speedup": loop_time / batched_time,
        }

    record = benchmark.pedantic(run, iterations=1, rounds=1)
    text = write_bench(results_dir, 2, record)
    print("\n" + text)

    # Lock-step decoding must return the loop path's exact solution...
    assert record["phi_batched"] == record["phi_loop"]
    assert record["batched"]["planner_calls"] == \
        record["loop"]["planner_calls"]
    assert record["batched"]["rollouts"] == NUM_BATCH_SAMPLES
    # ...at a multiple of its rollout throughput.
    assert record["speedup"] >= MIN_BATCH_SPEEDUP


def test_trace_overhead(benchmark, results_dir):
    """PR 3: tracing costs nothing when off, and changes nothing when on.

    The disabled path is measured directly: time ``NOOP_REPS`` no-op
    span+count pairs against the null tracer, count the instrumentation
    operations one traced smoke solve actually performs, and bound their
    estimated share of the untraced solve's wall time below 2%.  A traced
    solve must also return the bit-identical objective and mirror the
    solution's own perf counters into the registry.
    """

    def run():
        options = InstanceOptions(task_density=0.15)
        instance = generate_instances("delivery", 1, seed=100,
                                      options=options)[0]
        solver = SMORESolver(InsertionSolver(), RatioSelectionRule())

        start = time.perf_counter()
        untraced = solver.solve(instance, num_samples=NUM_SAMPLES,
                                rng=np.random.default_rng(0))
        untraced_time = time.perf_counter() - start

        sink = obs.ListSink()
        with obs.tracing(sink=sink) as tracer:
            start = time.perf_counter()
            traced = solver.solve(instance, num_samples=NUM_SAMPLES,
                                  rng=np.random.default_rng(0))
            traced_time = time.perf_counter() - start
            counters = dict(tracer.metrics.counters)
            span_closes = sum(
                int(total) for name, total in tracer.metrics.timings.items()
                if name.startswith("span.") and name.endswith(".count"))

        # Unit cost of one disabled span + counter increment.
        start = time.perf_counter()
        for _ in range(NOOP_REPS):
            with obs.span("bench"):
                obs.count("bench")
        disabled_pair_time = (time.perf_counter() - start) / NOOP_REPS

        # Every record emitted / counter touched / span closed is one
        # instrumentation operation the disabled path turns into a no-op.
        ops_per_solve = span_closes + len(sink.records) + len(counters)
        disabled_overhead = (disabled_pair_time * ops_per_solve
                             / untraced_time)

        return {
            "instance": {"W": instance.num_workers,
                         "S": instance.num_sensing_tasks,
                         "num_samples": NUM_SAMPLES},
            "untraced": dict(untraced.perf.to_dict(),
                             wall_time=untraced_time),
            "traced": dict(traced.perf.to_dict(), wall_time=traced_time),
            "phi_untraced": untraced.objective,
            "phi_traced": traced.objective,
            "trace_counters": counters,
            "ops_per_solve": ops_per_solve,
            "disabled_pair_seconds": disabled_pair_time,
            "disabled_overhead": disabled_overhead,
            "enabled_ratio": traced_time / untraced_time,
        }

    record = benchmark.pedantic(run, iterations=1, rounds=1)
    text = write_bench(results_dir, 3, record)
    print("\n" + text)

    # Tracing changes nothing about the computation...
    assert record["phi_traced"] == record["phi_untraced"]
    assert record["traced"]["planner_calls"] == \
        record["untraced"]["planner_calls"]
    # ...the registry mirrors the solution's own counters...
    assert record["trace_counters"]["solve.planner_calls"] == \
        record["traced"]["planner_calls"]
    assert record["trace_counters"]["solve.rollouts"] == NUM_SAMPLES
    # ...and the disabled path costs a negligible share of a solve.
    assert record["ops_per_solve"] > 0
    assert record["disabled_overhead"] < MAX_DISABLED_OVERHEAD
