"""Perf regression bench: snapshot reuse, cache stats, parallel parity.

Smoke-scale guardrails for the performance layer:

- sample-and-select-best inference pays the O(|W| x |S|) candidate
  initialisation exactly once (snapshot reuse), vs. once per rollout with
  ``reuse_candidates=False``;
- a :class:`~repro.tsptw.CachedPlanner` wrapper reports a non-trivial hit
  rate on the counters the solution carries;
- a parallel (``workers=2``) solve returns the same objective as serial.

Timings and call counts are written to ``results/BENCH_PR1.json`` so
regressions show up as a diff; assertions pin only the call counts (wall
time is hardware-dependent).
"""

import json
import time

import numpy as np

from repro.datasets import InstanceOptions, generate_instances
from repro.smore import RatioSelectionRule, SMORESolver
from repro.tsptw import CachedPlanner, InsertionSolver

from .conftest import write_artifact

NUM_SAMPLES = 4


def test_perf_regression(benchmark, results_dir):
    def run():
        options = InstanceOptions(task_density=0.15)
        instance = generate_instances("delivery", 1, seed=100,
                                      options=options)[0]
        solver = SMORESolver(InsertionSolver(), RatioSelectionRule())

        start = time.perf_counter()
        reuse = solver.solve(instance, num_samples=NUM_SAMPLES,
                             rng=np.random.default_rng(0))
        reuse_time = time.perf_counter() - start

        start = time.perf_counter()
        fresh = solver.solve(instance, num_samples=NUM_SAMPLES,
                             rng=np.random.default_rng(0),
                             reuse_candidates=False)
        fresh_time = time.perf_counter() - start

        # Same instance solved twice through one memoising wrapper (the
        # experiment-grid scenario): the second solve repeats every
        # planner query, so its counters show the cross-solve hit rate.
        cached_solver = SMORESolver(CachedPlanner(InsertionSolver()),
                                    RatioSelectionRule())
        cached_solver.solve(instance)
        cached = cached_solver.solve(instance)

        parallel = solver.solve(instance, num_samples=NUM_SAMPLES,
                                rng=np.random.default_rng(0), workers=2)

        return {
            "instance": {"W": instance.num_workers,
                         "S": instance.num_sensing_tasks,
                         "num_samples": NUM_SAMPLES},
            "snapshot_reuse": dict(reuse.perf.to_dict(),
                                   wall_time=reuse_time),
            "no_reuse": dict(fresh.perf.to_dict(), wall_time=fresh_time),
            "cached_planner": cached.perf.to_dict(),
            "parallel": {"phi_serial": reuse.objective,
                         "phi_parallel": parallel.objective,
                         "planner_calls": parallel.perf.planner_calls},
        }

    record = benchmark.pedantic(run, iterations=1, rounds=1)
    text = json.dumps(record, indent=2, sort_keys=True)
    write_artifact(results_dir, "BENCH_PR1.json", text)
    print("\n" + text)

    w_times_s = record["instance"]["W"] * record["instance"]["S"]
    # Snapshot reuse: the init sweep runs once, not once per rollout.
    assert record["snapshot_reuse"]["init_planner_calls"] == w_times_s
    assert record["no_reuse"]["init_planner_calls"] == \
        NUM_SAMPLES * w_times_s
    assert record["snapshot_reuse"]["planner_calls"] < \
        record["no_reuse"]["planner_calls"]
    assert record["snapshot_reuse"]["rollouts"] == NUM_SAMPLES
    # The memoising wrapper absorbs the second solve's repeated queries.
    assert record["cached_planner"]["cache_hits"] > 0
    assert record["cached_planner"]["cache_hit_rate"] > 0.3
    # Parallel decoding is result-identical to serial.
    assert record["parallel"]["phi_parallel"] == \
        record["parallel"]["phi_serial"]
    assert record["parallel"]["planner_calls"] == \
        record["snapshot_reuse"]["planner_calls"]
